"""Synthesized UDT accessor classes — the paper's SUDTs (Appendix B).

For every decomposable UDT Deca generates a class whose ``this`` reference
is really ``(byte buffer, start offset)``: field reads/writes become buffer
accesses at computed offsets, method bodies operate on raw bytes, and no
per-record object graph exists.  :func:`synthesize_sudt` reproduces that
code generation in Python: given a :class:`~repro.memory.layout.RecordSchema`
it builds a new class with a property per field —

* primitive fields read/write the buffer in place;
* nested records return a nested SUDT accessor (sharing the buffer);
* arrays return an :class:`ArrayView` supporting indexing, iteration and
  in-place element writes — but never length changes, because an RFST's
  data-size is fixed once constructed (§3.1).

Accessors are flyweights (two slots), so scanning a page re-binds one
accessor instead of allocating per record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import MemoryLayoutError, PageOverflowError
from .layout import (
    _STRUCT_CODES,
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    Schema,
    VarArraySchema,
)


# -- shadow-validation hooks ------------------------------------------------
@dataclass(frozen=True)
class SudtMutation:
    """One observed write through a synthesized accessor.

    *kind* is ``element-write`` / ``record-overwrite`` for size-preserving
    writes and ``array-resize`` / ``record-resize`` for attempts to change
    a record's data-size — the writes §3.1's safety property forbids on
    decomposed data (they raise ``PageOverflowError`` right after the
    observer fires).
    """

    schema: str
    kind: str
    old_size: int
    new_size: int

    @property
    def is_resize(self) -> bool:
        return self.kind.endswith("-resize")


MutationObserver = Callable[[SudtMutation], None]
_mutation_observers: list[MutationObserver] = []


def add_mutation_observer(observer: MutationObserver) -> None:
    """Register *observer* to be called on every SUDT write."""
    _mutation_observers.append(observer)


def remove_mutation_observer(observer: MutationObserver) -> None:
    """Unregister a previously added mutation observer."""
    _mutation_observers.remove(observer)


def _notify(event: SudtMutation) -> None:
    for observer in list(_mutation_observers):
        observer(event)


class ArrayView:
    """A mutable fixed-length view of a decomposed array."""

    __slots__ = ("_schema", "_element", "_buf", "_off", "_length",
                 "_data_off")

    def __init__(self, schema: FixedArraySchema | VarArraySchema,
                 buf, off: int) -> None:
        self._schema = schema
        self._element = schema.element
        self._buf = buf
        self._off = off
        if isinstance(schema, FixedArraySchema):
            self._length = schema.length
            self._data_off = off
        else:
            self._length = schema.length_at(buf, off)
            self._data_off = off + 4

    def __len__(self) -> int:
        return self._length

    def _element_offset(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._data_off + index * self._element.fixed_size

    def __getitem__(self, index: int) -> Any:
        value, _ = self._element.unpack_from(
            self._buf, self._element_offset(index))
        if isinstance(self._element, RecordSchema):
            return bind_accessor(self._element, self._buf,
                                 self._element_offset(index))
        return value

    def __setitem__(self, index: int, value: Any) -> None:
        self._element.pack_into(self._buf, self._element_offset(index),
                                value)
        if _mutation_observers:
            size = self._element.fixed_size or 0
            _notify(SudtMutation(schema=type(self._schema).__name__,
                                 kind="element-write",
                                 old_size=size, new_size=size))

    def __iter__(self) -> Iterator[Any]:
        for i in range(self._length):
            yield self[i]

    def to_tuple(self) -> tuple:
        """Materialize the elements as a tuple."""
        value, _ = self._schema.unpack_from(self._buf, self._off)
        return tuple(value)

    def typed_view(self) -> memoryview:
        """A typed zero-copy view over the elements (``memoryview.cast``).

        Only primitive-element arrays have one; reads through it skip the
        per-element ``struct`` round-trip entirely, which is what the
        columnar SQL kernels scan.  The caller must release the view
        before the backing page group is reclaimed.
        """
        if not isinstance(self._element, PrimitiveSlot):
            raise MemoryLayoutError(
                "typed views exist only for primitive-element arrays")
        code = _STRUCT_CODES[self._element.primitive.name]
        nbytes = self._length * self._element.fixed_size
        raw = memoryview(self._buf)[self._data_off:self._data_off + nbytes]
        return raw.cast(code)

    def replace(self, values) -> None:
        """Overwrite all elements; the length must match exactly.

        Growing is forbidden: it would overwrite the next record in the
        page (the safety property of §3.1).
        """
        if len(values) != self._length:
            if _mutation_observers:
                _notify(SudtMutation(
                    schema=type(self._schema).__name__,
                    kind="array-resize",
                    old_size=self._length, new_size=len(values)))
            raise PageOverflowError(
                f"cannot resize decomposed array from {self._length} to "
                f"{len(values)} elements")
        for i, v in enumerate(values):
            self[i] = v


_ACCESSOR_CACHE: dict[int, type] = {}


class SudtClass:
    """Base class of every synthesized accessor.

    Instances are views: ``_buf`` is the backing buffer (a page's
    ``bytearray`` or ``memoryview``), ``_off`` the record's start offset.
    """

    __slots__ = ("_buf", "_off")
    _schema: RecordSchema  # set on synthesized subclasses

    def __init__(self, buf=None, off: int = 0) -> None:
        self._buf = buf
        self._off = off

    def bind(self, buf, off: int) -> "SudtClass":
        """Re-point this accessor at another record; returns self."""
        self._buf = buf
        self._off = off
        return self

    def data_size(self) -> int:
        """Byte size of the record this accessor is bound to."""
        schema = self._schema
        if schema.fixed_size is not None:
            return schema.fixed_size
        return schema.skip(self._buf, self._off) - self._off

    def to_tuple(self) -> tuple:
        """Materialize the record as a plain tuple (field order)."""
        value, _ = self._schema.unpack_from(self._buf, self._off)
        return value

    def write(self, value: tuple) -> None:
        """Overwrite the whole record with *value* (same layout size)."""
        schema = self._schema
        size = schema.size_of(value)
        old_size = self.data_size()
        if size != old_size:
            if _mutation_observers:
                _notify(SudtMutation(schema=schema.name,
                                     kind="record-resize",
                                     old_size=old_size, new_size=size))
            raise PageOverflowError(
                f"record size change {old_size} -> {size} would "
                "damage the page layout")
        schema.pack_into(self._buf, self._off, value)
        if _mutation_observers:
            _notify(SudtMutation(schema=schema.name,
                                 kind="record-overwrite",
                                 old_size=old_size, new_size=size))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(off={self._off})"


def _make_property(index: int, name: str, schema: Schema):
    if isinstance(schema, PrimitiveSlot):
        def getter(self):
            off = self._schema.field_offset(self._buf, self._off, index)
            value, _ = schema.unpack_from(self._buf, off)
            return value

        def setter(self, value):
            off = self._schema.field_offset(self._buf, self._off, index)
            schema.pack_into(self._buf, off, value)

        return property(getter, setter, doc=f"primitive field {name!r}")

    if isinstance(schema, (FixedArraySchema, VarArraySchema)):
        def getter(self):
            off = self._schema.field_offset(self._buf, self._off, index)
            return ArrayView(schema, self._buf, off)

        return property(getter, doc=f"array field {name!r}")

    if isinstance(schema, RecordSchema):
        def getter(self):
            off = self._schema.field_offset(self._buf, self._off, index)
            return bind_accessor(schema, self._buf, off)

        return property(getter, doc=f"nested record field {name!r}")

    raise MemoryLayoutError(f"cannot synthesize accessor for {schema!r}")


def synthesize_sudt(schema: RecordSchema,
                    class_name: str | None = None) -> type:
    """Generate (and cache) the accessor class for *schema*."""
    cached = _ACCESSOR_CACHE.get(id(schema))
    if cached is not None:
        return cached
    name = class_name or f"Sudt_{schema.name}"
    namespace: dict[str, Any] = {
        "__slots__": (),
        "_schema": schema,
        "__doc__": (f"Synthesized accessor (SUDT) for {schema.name}: "
                    "field reads/writes go straight to the page bytes."),
    }
    for index, (fname, fschema) in enumerate(schema.fields):
        namespace[fname] = _make_property(index, fname, fschema)
    cls = type(name, (SudtClass,), namespace)
    _ACCESSOR_CACHE[id(schema)] = cls
    return cls


def bind_accessor(schema: RecordSchema, buf, off: int) -> SudtClass:
    """Create an accessor for the record of *schema* at ``buf[off:]``."""
    return synthesize_sudt(schema)(buf, off)
