"""Deca's page-based memory: real byte-level object decomposition.

Unlike the GC substrate (which is simulated), this package is the genuine
article: UDT objects are flattened into byte segments inside fixed-size
pages, with field offsets computed from the type layout and *synthesized
accessor classes* (SUDTs, Appendix B) reading and writing the raw bytes —
no per-record Python objects survive.

* :mod:`repro.memory.layout` — byte-layout schemas for decomposable UDTs:
  field offsets, data-size computation, pack/unpack;
* :mod:`repro.memory.sudt` — synthesized accessor classes over segments;
* :mod:`repro.memory.page` — :class:`Page`, :class:`PageInfo` and
  :class:`PageGroup` (§4.3.1), with reference-counted reclamation;
* :mod:`repro.memory.manager` — the per-executor memory manager: page-group
  registry, LRU bookkeeping and eviction under heap pressure;
* :mod:`repro.memory.unified` — the unified executor memory arena
  (SPARK-10000): one accounting plane for cache, shuffle and Deca pages,
  with execution/storage borrowing and cooperative spilling;
* :mod:`repro.memory.tier` — the mmap-backed cold tier: swapped page
  groups move as raw bytes into file-backed extents and promote back as
  zero-copy views (``DecaConfig.cold_tier="mmap"``).
"""

from .layout import (
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    Schema,
    VarArraySchema,
    build_schema,
)
from .sudt import SudtClass, synthesize_sudt
from .page import Page, PageGroup, PageInfo, PagePointer
from .manager import DecaMemoryManager
from .tier import PageStoreTier, TierExtent, TierStats
from .unified import (
    MemoryConsumer,
    StaticMemoryArena,
    UnifiedMemoryManager,
    create_memory_arena,
)

__all__ = [
    "FixedArraySchema",
    "PrimitiveSlot",
    "RecordSchema",
    "Schema",
    "VarArraySchema",
    "build_schema",
    "SudtClass",
    "synthesize_sudt",
    "Page",
    "PageGroup",
    "PageInfo",
    "PagePointer",
    "DecaMemoryManager",
    "PageStoreTier",
    "TierExtent",
    "TierStats",
    "MemoryConsumer",
    "StaticMemoryArena",
    "UnifiedMemoryManager",
    "create_memory_arena",
]
