"""deca-lint: diagnostics and soundness verification for the analysis.

Two layers over the Deca lifetime analysis (see ``docs/static_analysis.md``):

* **static rules** (``DECA001``–``DECA007``) — walk the UDT models, method
  IR, call graphs, symbolized-constant facts and optimizer plans, flagging
  patterns that force object form or undermine the analysis' assumptions;
* **shadow validation** (``DECA101``/``DECA102``) — instrument the runtime
  during a real DECA-mode run and differentially compare observed record
  sizes and accessor writes against the static classification;
* **closure rules** (``DECA201``–``DECA206``, ``DECA211``/``DECA212``) —
  run the bytecode-level closure analyzer over every UDF the shadow run
  registered, then double-run a sampled task and diff the outputs
  (``docs/closure_analysis.md``);
* **borrow rules** (``DECA301``–``DECA308``) — the zero-copy borrow
  checker over the engine's own mmap/shm plumbing, reported under the
  ``engine`` pseudo-app; the runtime counterpart is the alias sanitizer
  (``REPRO_SANITIZE=1``, :mod:`repro.memory.provenance`);
* **race rules** (``DECA401``–``DECA410``) — the happens-before race
  detector over the engine's concurrency surface (mp backend, shm
  protocol, scheduler, arena, cold tier), reported under the ``race``
  pseudo-app; the runtime counterpart is the vector-clock sanitizer
  (:mod:`repro.obs.vclock`).

Entry points: :func:`run_lint` (library) and ``python -m repro.bench lint``
(CLI, with text/JSON/SARIF output and a committed baseline checked in CI).
"""

from .borrow import ENGINE_MODULES, analyze_source, run_borrow_rules
from .closure_rules import app_sites, run_closure_rules
from .engine import (
    ENGINE_APP,
    PSEUDO_APPS,
    RACE_APP,
    AppLintResult,
    LintReport,
    lint_app,
    lint_engine,
    lint_race,
    run_lint,
)
from .findings import (
    Finding,
    Rule,
    RULES,
    RULES_BY_ID,
    Severity,
    make_finding,
    sort_findings,
)
from .output import (
    baseline_diff,
    filter_report,
    render_text,
    report_payload,
    serialize,
    to_sarif,
)
from .race import RACE_MODULES, analyze_race_source, run_race_rules
from .rules import LintTarget, run_plan_rules, run_static_rules
from .shadow import (
    ArenaEvent,
    PageAppend,
    ShadowRecorder,
    check_arena_accounting,
    check_imprecision,
    check_observations,
    shadow_summary,
)
from .targets import LINT_APPS, LINT_APPS_BY_NAME, LintApp

__all__ = [
    "AppLintResult",
    "ArenaEvent",
    "ENGINE_APP",
    "ENGINE_MODULES",
    "Finding",
    "LINT_APPS",
    "LINT_APPS_BY_NAME",
    "LintApp",
    "LintReport",
    "LintTarget",
    "PSEUDO_APPS",
    "PageAppend",
    "RACE_APP",
    "RACE_MODULES",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Severity",
    "ShadowRecorder",
    "analyze_race_source",
    "analyze_source",
    "app_sites",
    "baseline_diff",
    "check_arena_accounting",
    "check_imprecision",
    "check_observations",
    "filter_report",
    "lint_app",
    "lint_engine",
    "lint_race",
    "run_borrow_rules",
    "run_closure_rules",
    "run_race_rules",
    "make_finding",
    "render_text",
    "report_payload",
    "run_lint",
    "run_plan_rules",
    "run_static_rules",
    "serialize",
    "shadow_summary",
    "sort_findings",
    "to_sarif",
]
