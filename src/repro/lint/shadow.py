"""The shadow validator: differential checking of the lifetime analysis.

The static analysis makes two kinds of promise (§3.1): a *soundness*
promise — records in decomposed containers never change data-size — and a
*precision* aspiration — object-form fallbacks happen only when sizes can
really vary.  The shadow validator instruments the runtime (page-group
appends via :mod:`repro.memory.page`, accessor writes via
:mod:`repro.memory.sudt`), records what actually happened during a real
run, and compares it against the optimizer's decomposition claims:

* ``DECA101`` (soundness) — a container the analysis declared SFST shows
  records of differing sizes, or any accessor attempted to resize a
  decomposed record/array;
* ``DECA102`` (imprecision) — a cache kept in object form as a VST, where
  every observed instance nevertheless had the same data-size.

Observer lists are empty in normal runs, so the instrumented hot paths
pay one truthiness check each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.size_type import SizeType
from ..core.optimizer import PlanReport
from ..memory import page as page_module
from ..memory import sudt as sudt_module
from ..memory import unified as unified_module
from ..memory.page import PageGroup
from ..memory.sudt import SudtMutation
from .findings import Finding, make_finding

if TYPE_CHECKING:
    from ..spark.context import DecaContext

# DECA102 samples at most this many records per cached dataset; measuring
# every object of a large cache would dwarf the run under validation.
IMPRECISION_SAMPLE = 64


@dataclass(frozen=True)
class PageAppend:
    """One record packed into a page group."""

    group: str
    schema: str
    size: int


@dataclass(frozen=True)
class ArenaEvent:
    """One storage-side accounting event from the unified arena."""

    event: str    # acquire / grow / release / evict / reject
    entry: str    # the storage-entry name (page groups use their name)
    nbytes: int


class ShadowRecorder:
    """Context manager that records runtime memory behaviour.

    While active, every ``PageGroup.append_record``, every SUDT accessor
    write, and (in unified memory mode) every arena ``memory.*`` event
    anywhere in the process is appended to this recorder.
    """

    def __init__(self) -> None:
        self.appends: list[PageAppend] = []
        self.mutations: list[SudtMutation] = []
        self.arena_events: list[ArenaEvent] = []

    # -- observer callbacks -------------------------------------------------
    def _on_record(self, group: PageGroup, schema: str, size: int) -> None:
        self.appends.append(PageAppend(group=group.name, schema=schema,
                                       size=size))

    def _on_mutation(self, event: SudtMutation) -> None:
        self.mutations.append(event)

    def _on_memory(self, event: str, payload: dict[str, object]) -> None:
        entry = payload.get("entry")
        if entry is None:
            return  # execution-side events carry no storage entry
        nbytes = payload.get("nbytes", 0)
        self.arena_events.append(ArenaEvent(
            event=event, entry=str(entry),
            nbytes=nbytes if isinstance(nbytes, int) else 0))

    # -- context management -------------------------------------------------
    def __enter__(self) -> "ShadowRecorder":
        page_module.add_record_observer(self._on_record)
        sudt_module.add_mutation_observer(self._on_mutation)
        unified_module.add_memory_observer(self._on_memory)
        return self

    def __exit__(self, *exc_info: object) -> None:
        page_module.remove_record_observer(self._on_record)
        sudt_module.remove_mutation_observer(self._on_mutation)
        unified_module.remove_memory_observer(self._on_memory)

    # -- derived views ------------------------------------------------------
    def sizes_by_schema(self) -> dict[str, list[int]]:
        """Observed record sizes grouped by schema label."""
        sizes: dict[str, list[int]] = {}
        for append in self.appends:
            sizes.setdefault(append.schema, []).append(append.size)
        return sizes

    def resize_attempts(self) -> list[SudtMutation]:
        return [m for m in self.mutations if m.is_resize]

    def arena_balances(self) -> dict[str, tuple[int, int]]:
        """Per storage entry: ``(peak_bytes, final_bytes)`` as the
        arena accounted them (acquire/grow add, release subtracts; an
        evict is always followed by its discard's release)."""
        current: dict[str, int] = {}
        peak: dict[str, int] = {}
        for event in self.arena_events:
            if event.event in ("acquire", "grow"):
                now = current.get(event.entry, 0) + event.nbytes
            elif event.event == "release":
                now = current.get(event.entry, 0) - event.nbytes
            else:
                continue  # evict/reject do not move the balance
            current[event.entry] = now
            peak[event.entry] = max(peak.get(event.entry, 0), now)
        return {name: (peak[name], current[name]) for name in peak}


def check_observations(app: str, recorder: ShadowRecorder,
                       reports: tuple[PlanReport, ...]) -> list[Finding]:
    """``DECA101``: observed behaviour vs. the static claims.

    Page-group record labels are schema names, and a schema's name is the
    UDT's name (:func:`repro.memory.layout.build_schema`), so observations
    join against plan reports by UDT name.
    """
    findings: list[Finding] = []
    claims: dict[str, SizeType] = {}
    for report in reports:
        if report.decomposed and report.udt \
                and report.global_size_type is not None:
            claims[report.udt] = report.global_size_type

    for schema, sizes in sorted(recorder.sizes_by_schema().items()):
        claim = claims.get(schema)
        if claim is not SizeType.STATIC_FIXED:
            continue  # RFSTs may legally differ per record
        distinct = sorted(set(sizes))
        if len(distinct) <= 1:
            continue
        findings.append(make_finding(
            "DECA101", f"{app}/shadow", schema,
            f"static analysis classified {schema} as SFST (every instance "
            f"the same size), but the runtime packed records of "
            f"{len(distinct)} distinct sizes "
            f"({distinct[0]}..{distinct[-1]} bytes) into its pages",
            why=(f"[shadow.pages] {len(sizes)} records observed with "
                 f"sizes {distinct}",)))

    seen: set[tuple[str, str, int, int]] = set()
    for mutation in recorder.resize_attempts():
        key = (mutation.schema, mutation.kind, mutation.old_size,
               mutation.new_size)
        if key in seen:
            continue
        seen.add(key)
        findings.append(make_finding(
            "DECA101", f"{app}/shadow", mutation.schema,
            f"runtime attempted a {mutation.kind} on decomposed data "
            f"({mutation.old_size} -> {mutation.new_size}); a decomposed "
            "record's data-size must never change after construction "
            "(§3.1)",
            why=(f"[shadow.sudt] {mutation.kind} intercepted by the "
                 "accessor layer",)))
    return findings


def check_arena_accounting(app: str, recorder: ShadowRecorder,
                           reports: tuple[PlanReport, ...]
                           ) -> list[Finding]:
    """``DECA101``: arena-observed page-group bytes vs. static claims.

    In unified memory mode every page group's bytes flow through the
    arena's storage ledger (``memory.acquire``/``grow``/``release``
    events).  Two soundness obligations fall out:

    * the data packed into a group's pages can never exceed the bytes
      the arena accounted for it — if it does, the decomposed layout
      the size-type claim produced is smaller than the records the
      runtime actually wrote;
    * every group's ledger must balance (an entry can't end negative).
    """
    findings: list[Finding] = []
    balances = recorder.arena_balances()
    if not balances:
        return findings  # static mode: the arena observed nothing

    packed: dict[str, int] = {}
    schema_of: dict[str, str] = {}
    for append in recorder.appends:
        packed[append.group] = packed.get(append.group, 0) + append.size
        schema_of[append.group] = append.schema

    claims: dict[str, SizeType] = {}
    for report in reports:
        if report.decomposed and report.udt \
                and report.global_size_type is not None:
            claims[report.udt] = report.global_size_type

    for group in sorted(packed):
        if group not in balances:
            continue  # group never reached the arena (non-evictable)
        peak, final = balances[group]
        schema = schema_of[group]
        claim = claims.get(schema)
        if packed[group] > peak:
            claim_note = (f" (claimed {claim.name})"
                          if claim is not None else "")
            findings.append(make_finding(
                "DECA101", f"{app}/shadow", schema,
                f"the runtime packed {packed[group]} data bytes into "
                f"page group {group!r}, but the unified arena only ever "
                f"accounted {peak} bytes for it — the decomposed layout "
                f"derived from the size-type claim{claim_note} is "
                "smaller than the records actually written",
                why=(f"[shadow.arena] peak ledger {peak} B < packed "
                     f"{packed[group]} B over "
                     f"{len(recorder.arena_events)} arena events",)))
        if final < 0:
            findings.append(make_finding(
                "DECA101", f"{app}/shadow", schema,
                f"the arena ledger for page group {group!r} ends "
                f"{-final} bytes negative: more bytes were released "
                "than were ever acquired for it",
                why=("[shadow.arena] acquire/grow/release events do "
                     "not balance",)))
    return findings


def check_imprecision(app: str, ctx: "DecaContext",
                      reports: tuple[PlanReport, ...]) -> list[Finding]:
    """``DECA102``: object-form caches whose instances never varied.

    Not a bug — the analysis is conservative by design — but each note is
    a concrete precision gap worth a look (e.g. a missing init-only
    assumption or runtime symbol binding).
    """
    object_form: dict[str, PlanReport] = {}
    for report in reports:
        if report.target.startswith("cache:") and report.udt \
                and not report.decomposed \
                and report.global_size_type is SizeType.VARIABLE:
            object_form[report.target] = report

    sizes_by_rdd: dict[str, set[int]] = {}
    counts_by_rdd: dict[str, int] = {}
    for executor in ctx.executors:
        for key, block in executor.cache.blocks.items():
            if block.records is None:
                continue
            rdd = ctx._rdds.get(key[0])
            if rdd is None or rdd.udt_info is None:
                continue
            if f"cache:{rdd.name}" not in object_form:
                continue
            info = rdd.udt_info
            sizes = sizes_by_rdd.setdefault(rdd.name, set())
            count = counts_by_rdd.get(rdd.name, 0)
            for record in block.records:
                if count >= IMPRECISION_SAMPLE:
                    break
                sizes.add(info.measure(record).data_bytes)
                count += 1
            counts_by_rdd[rdd.name] = count

    findings: list[Finding] = []
    for name in sorted(sizes_by_rdd):
        sizes = sizes_by_rdd[name]
        count = counts_by_rdd[name]
        if count < 2 or len(sizes) != 1:
            continue
        (size,) = sizes
        report = object_form[f"cache:{name}"]
        findings.append(make_finding(
            "DECA102", f"{app}/cache:{name}", report.udt or name,
            f"cache {name!r} stayed in object form (classified "
            f"variable-sized), yet all {count} sampled records measured "
            f"exactly {size} data bytes — the classification may be "
            "imprecise for this workload",
            why=(f"[shadow.cache] {count} records sampled, one distinct "
                 f"data-size ({size} B)",
                 f"[optimizer.plan] {report.reason}")))
    return findings


def shadow_summary(recorder: ShadowRecorder,
                   reports: tuple[PlanReport, ...]) -> dict[str, object]:
    """Integer-only observation summary (safe for byte-stable baselines)."""
    schemas: dict[str, dict[str, int]] = {}
    for schema, sizes in sorted(recorder.sizes_by_schema().items()):
        schemas[schema] = {
            "records": len(sizes),
            "min_bytes": min(sizes),
            "max_bytes": max(sizes),
        }
    return {
        "page_records": len(recorder.appends),
        "schemas": schemas,
        "sudt_writes": sum(1 for m in recorder.mutations
                           if not m.is_resize),
        "resize_attempts": len(recorder.resize_attempts()),
        "plans": [report.to_dict() for report in reports],
    }
