"""The zero-copy borrow checker (``DECA301``–``DECA308``).

The static half of the provenance sanitizer (the dynamic half is
:mod:`repro.memory.provenance`).  It parses the engine's zero-copy
modules with :mod:`ast`, lowers every function into the analysis mini-IR
(:mod:`repro.analysis.ir`) — each recognized lifecycle operation becomes
a ``Call`` to a synthetic ``op:*`` leaf method, branches become ``If``,
loops become ``Loop``, intra-module calls stay as calls so the scope can
be walked with :class:`repro.analysis.callgraph.CallGraph` — and then
enumerates bounded control-flow paths per function, running a borrow
state machine over each path.

The lifecycle model mirrors the runtime ledger's:

* **exports** — ``tier.views(name)`` / ``tier.swap_in(name)`` /
  ``segment.view(..)`` / ``segment.allocate(..)`` hand out a
  ``memoryview`` borrowing the named backing resource;
* **releases** — ``view.release()`` / ``obj._release()`` / ``del view``
  end a borrow; ``registry.release(name)`` / ``unlink_segment(name)``
  and ``tier.drop(name)`` end the *backing*;
* **adoption** — ``group.adopt_page(view)`` transfers ownership to the
  page group; any second handle kept past that point escapes the
  refcount protocol (§4.3);
* **remap** — a grow/remap function must retire the old mapping (the
  ``try: close() except BufferError: retire`` protocol) rather than
  ``resize``/close it in place.

Matching is textual on the resource expression (the extent/segment name
argument), which is exactly as precise as one function's view of its own
locals — the point-of-use rules below only ever compare tokens produced
inside a single (inlined) function scope, so the checker is path-
sensitive but has no false cross-resource aliasing.

Everything here is deterministic: modules are visited in a fixed order,
``ast`` iteration is source order, and path enumeration is bounded by
:data:`PATH_LIMIT`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..analysis.callgraph import CallGraph
from ..analysis.ir import Call, If, Loop, Method, Return, Stmt
from ..analysis.pointsto import (
    ContainerKind,
    ContainerRef,
    CreationSite,
    PointsToBinding,
    assign_ownership,
)
from ..analysis.udt import ClassType
from .findings import Finding, make_finding, sort_findings

#: Bound on enumerated control-flow paths per function.
PATH_LIMIT = 256
#: Intra-module call inlining depth during path enumeration.
INLINE_DEPTH = 3

#: The engine modules whose zero-copy plumbing the checker audits,
#: relative to the ``repro`` package root.  ``exec/worker.py`` is
#: excluded: it runs entirely inside forked children whose segments are
#: swept by name prefix, not borrow-tracked.
ENGINE_MODULES: tuple[tuple[str, str], ...] = (
    ("repro.memory.tier", "memory/tier.py"),
    ("repro.memory.page", "memory/page.py"),
    ("repro.spark.cache", "spark/cache.py"),
    ("repro.sql.columnar", "sql/columnar.py"),
    ("repro.exec.shm", "exec/shm.py"),
    ("repro.exec.mp", "exec/mp.py"),
)

# -- op vocabulary -----------------------------------------------------------
EXPORT = "EXPORT"
ALLOC = "ALLOC"
RELEASE = "RELEASE"
SEGRELEASE = "SEGRELEASE"
FREE = "FREE"
RECLAIM = "RECLAIM"
ADOPT = "ADOPT"
ESCAPE = "ESCAPE"
UNLINK = "UNLINK"
DRAIN = "DRAIN"
RELEASE_COPY = "RELEASE_COPY"
REMAP_SAFE = "REMAP_SAFE"
REMAP_UNSAFE = "REMAP_UNSAFE"
DETACH = "DETACH"
COLD_GUARD = "COLD_GUARD"
PAYLOAD_READ = "PAYLOAD_READ"
GUARD = "GUARD"
RETURN = "RETURN"
RAISE = "RAISE"

#: Ops that count as "this path does clean up" for DECA306.
_RELEASING = frozenset({RELEASE, SEGRELEASE, FREE, RECLAIM, UNLINK,
                        RELEASE_COPY, DETACH})

#: Guard texts that mark an early return as an idempotence/absence check,
#: not a leak (``if self._closed: return`` and friends).
_IDEMPOTENT_WORDS = ("closed", "reclaimed", "freed", "is none", "released",
                     "not self", "dropped")

#: Function names treated as teardown for DECA306.
_TEARDOWN_NAMES = frozenset({"close", "finish", "shutdown", "release_all",
                             "teardown"})

_OP_METHODS: dict[str, Method] = {}


def _op_method(kind: str) -> Method:
    """The shared synthetic leaf method representing one op kind."""
    method = _OP_METHODS.get(kind)
    if method is None:
        method = Method(name=f"op:{kind}")
        _OP_METHODS[kind] = method
    return method


def _op(kind: str, resource: str, line: int) -> Call:
    """Encode one lifecycle op as an IR call to its leaf method."""
    return Call(target=str(line), method=_op_method(kind),
                receiver=resource)


@dataclass(frozen=True)
class PathOp:
    """One op occurrence along an enumerated path."""

    kind: str
    resource: str
    line: int
    depth: int          # 0 = in the function itself, >0 = inlined callee


@dataclass
class FuncModel:
    """One lowered function: its IR body plus rule-relevant metadata."""

    module: str
    relpath: str
    qualname: str
    cls: str | None
    name: str
    lineno: int
    end_lineno: int
    method: Method
    growlike: bool = False
    is_teardown: bool = False
    cache_entry_class: bool = False
    escapes: list[tuple[str, int]] = dc_field(default_factory=list)


def _text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on py>=3.9
        return "<expr>"


def _is_teardown_name(name: str) -> bool:
    return (name in _TEARDOWN_NAMES or name.endswith("_close")
            or name.endswith("_finish"))


class _Lowerer:
    """Lowers one Python function body into the mini-IR op stream."""

    def __init__(self, model: FuncModel,
                 module_methods: dict[str, Method]) -> None:
        self.model = model
        self.module_methods = module_methods
        # var name -> resource token ("extent:<expr>" / "segment:<expr>")
        self.aliases: dict[str, str] = {}
        # var name -> segment resource, for SharedPageSegment handles
        self.seg_handles: dict[str, str] = {}
        # vars whose views were adopted into a page group
        self.adopted: set[str] = set()
        self._buffer_guard_depth = 0

    # -- helpers ------------------------------------------------------------
    def _token(self, call: ast.Call) -> str:
        if call.args:
            return _text(call.args[0])
        for kw in call.keywords:
            if kw.arg == "name":
                return _text(kw.value)
        return _text(call.func)

    def _bind(self, target: ast.expr | None, resource: str) -> None:
        if isinstance(target, ast.Name):
            self.aliases[target.id] = resource

    def _propagate(self, target: ast.expr, value: ast.expr) -> None:
        """Alias propagation through ``x = y`` and ``x = y[...]``."""
        base = value
        while isinstance(base, ast.Subscript):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        name = base.id
        if isinstance(target, ast.Name):
            if name in self.aliases:
                self.aliases[target.id] = self.aliases[name]
            if name in self.adopted:
                self.adopted.add(target.id)
            if name in self.seg_handles:
                self.seg_handles[target.id] = self.seg_handles[name]
        elif isinstance(target, ast.Attribute) and name in self.adopted:
            # self.attr = adopted-view — the handle escapes the adoption.
            self.model.escapes.append(
                (self.aliases.get(name, f"extent:{name}"), target.lineno))

    def _escape_if_adopted(self, node: ast.expr | None, line: int) -> bool:
        base = node
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.adopted:
            self.model.escapes.append(
                (self.aliases.get(base.id, f"extent:{base.id}"), line))
            return True
        return False

    # -- call recognition ---------------------------------------------------
    def _call_ops(self, call: ast.Call,
                  target: ast.expr | None = None) -> list[Stmt]:
        func = call.func
        line = call.lineno
        nargs = len(call.args)
        out: list[Stmt] = []
        if isinstance(func, ast.Name):
            if func.id == "unlink_segment" and nargs >= 1:
                out.append(_op(UNLINK, f"segment:{self._token(call)}",
                               line))
            elif func.id in ("SharedPageSegment", "SharedMemory"):
                self._bind(target, f"segment:{self._token(call)}")
                if isinstance(target, ast.Name):
                    self.seg_handles[target.id] = \
                        f"segment:{self._token(call)}"
            elif func.id in self.module_methods:
                out.append(Call(target=None,
                                method=self.module_methods[func.id]))
            return out
        if not isinstance(func, ast.Attribute):
            return out
        recv = _text(func.value)
        meth = func.attr
        if "ledger" in recv:
            return out  # sanitizer instrumentation is not a lifecycle op
        if meth in ("views", "swap_in"):
            resource = f"extent:{self._token(call)}"
            out.append(_op(EXPORT, resource, line))
            self._bind(target, resource)
        elif meth == "swap_out" and nargs >= 1:
            out.append(_op(ALLOC, f"extent:{self._token(call)}", line))
        elif meth == "view" and isinstance(func.value, ast.Name) \
                and func.value.id in self.seg_handles:
            resource = self.seg_handles[func.value.id]
            out.append(_op(EXPORT, resource, line))
            self._bind(target, resource)
        elif meth == "allocate" and isinstance(func.value, ast.Name) \
                and func.value.id in self.seg_handles:
            resource = self.seg_handles[func.value.id]
            out.append(_op(EXPORT, resource, line))
            self._bind(target, resource)
        elif meth == "release":
            if nargs == 0:
                resource = self.aliases.get(recv, f"?:{recv}")
                if isinstance(func.value, ast.Name):
                    resource = self.aliases.get(func.value.id, resource)
                out.append(_op(RELEASE, resource, line))
            else:
                out.append(_op(SEGRELEASE,
                               f"segment:{self._token(call)}", line))
        elif meth == "_release" and nargs == 0:
            out.append(_op(RELEASE, self.aliases.get(recv, f"?:{recv}"),
                           line))
        elif meth == "release_all":
            out.append(_op(SEGRELEASE, "segment:*", line))
        elif meth == "drop" and nargs >= 1:
            out.append(_op(FREE, f"extent:{self._token(call)}", line))
        elif meth == "reclaim" and nargs == 0:
            out.append(_op(RECLAIM, recv, line))
        elif meth == "adopt_page" and nargs >= 1:
            arg = call.args[0]
            resource = "extent:?"
            if isinstance(arg, ast.Name):
                resource = self.aliases.get(arg.id, resource)
                self.adopted.add(arg.id)
                # every alias of the same resource is now group-owned
                for var, res in self.aliases.items():
                    if res == resource:
                        self.adopted.add(var)
            out.append(_op(ADOPT, resource, line))
        elif meth == "unlink" and nargs == 0:
            resource = f"segment:{recv}"
            if isinstance(func.value, ast.Name):
                resource = self.seg_handles.get(func.value.id, resource)
            out.append(_op(UNLINK, resource, line))
        elif meth == "drain" and nargs == 0:
            out.append(_op(DRAIN, recv, line))
        elif meth in ("shrink", "free_group"):
            out.append(_op(RELEASE_COPY, recv, line))
        elif meth == "register" and nargs >= 1:
            out.append(_op(ALLOC, f"segment:{self._token(call)}", line))
        elif meth == "resize":
            kind = (REMAP_SAFE if self._buffer_guard_depth > 0
                    else REMAP_UNSAFE)
            out.append(_op(kind, recv, line))
        elif meth == "close" and nargs == 0:
            if self.model.growlike:
                kind = (REMAP_SAFE if self._buffer_guard_depth > 0
                        else REMAP_UNSAFE)
                out.append(_op(kind, recv, line))
            else:
                out.append(_op(DETACH, recv, line))
        elif isinstance(func.value, ast.Name) and func.value.id == "self" \
                and meth in self.module_methods:
            out.append(Call(target=None, method=self.module_methods[meth]))
        elif meth == "append" and nargs == 1:
            self._escape_if_adopted(call.args[0], line)
            if self.model.escapes and self.model.escapes[-1][1] == line:
                out.append(_op(ESCAPE, self.model.escapes[-1][0], line))
        return out

    def _calls_in(self, node: ast.AST) -> list[Stmt]:
        """Recognize every call inside *node*, in source order."""
        calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        calls.sort(key=lambda n: (n.lineno, n.col_offset))
        out: list[Stmt] = []
        for call in calls:
            out.extend(self._call_ops(call))
        return out

    # -- statement lowering -------------------------------------------------
    def lower(self, body: list[ast.stmt]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for stmt in body:
            out.extend(self._lower_stmt(stmt))
        return tuple(out)

    def _payload_read(self, stmt: ast.stmt,
                      node: ast.AST | None = None) -> list[Stmt]:
        """A statement that *reads* the entry payload (not a write to it).

        For assignments only the value side counts — ``self.blob = x``
        in a constructor is initialization, not a stale-bytes read.
        """
        if not self.model.cache_entry_class:
            return []
        text = _text(node if node is not None else stmt)
        if any(ref in text for ref in
               ("self.blob", "self.records", "self.ref")):
            return [_op(PAYLOAD_READ, "payload", stmt.lineno)]
        return []

    def _lower_stmt(self, stmt: ast.stmt) -> list[Stmt]:
        if isinstance(stmt, ast.Expr):
            ops = []
            if isinstance(stmt.value, ast.Yield):
                if self._escape_if_adopted(stmt.value.value, stmt.lineno):
                    ops.append(_op(ESCAPE, self.model.escapes[-1][0],
                                   stmt.lineno))
            if isinstance(stmt.value, ast.Call):
                ops.extend(self._call_ops(stmt.value))
                for arg in stmt.value.args:
                    ops.extend(self._calls_in(arg))
            else:
                ops.extend(self._calls_in(stmt.value))
            return ops + self._payload_read(stmt)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._lower_assign(stmt)
        if isinstance(stmt, ast.Return):
            ops = []
            if stmt.value is not None:
                if self._escape_if_adopted(stmt.value, stmt.lineno):
                    ops.append(_op(ESCAPE, self.model.escapes[-1][0],
                                   stmt.lineno))
                ops.extend(self._calls_in(stmt.value))
            # Payload reads must precede the path-terminating Return, or
            # ``return self.blob[..]`` would drop its PAYLOAD_READ op.
            ops = self._payload_read(stmt, stmt.value) + ops
            ops.append(_op(RETURN, "", stmt.lineno))
            ops.append(Return())
            return ops
        if isinstance(stmt, ast.Raise):
            return [_op(RAISE, "", stmt.lineno), Return()]
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt)
        if isinstance(stmt, ast.While):
            ops = [_op(GUARD, _text(stmt.test).lower(), stmt.lineno)]
            ops.extend(self._calls_in(stmt.test))
            body = self.lower(stmt.body)
            return ops + [Loop(body=body)]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            ops: list[Stmt] = []
            for item in stmt.items:
                ops.extend(self._calls_in(item.context_expr))
            return ops + list(self.lower(stmt.body))
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt)
        if isinstance(stmt, ast.Delete):
            ops = []
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id in self.aliases:
                    ops.append(_op(RELEASE, self.aliases[tgt.id],
                                   stmt.lineno))
            return ops
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []  # nested scopes are opaque (lambdas likewise)
        if isinstance(stmt, (ast.Assert,)):
            return self._calls_in(stmt.test)
        return self._calls_in(stmt)

    def _lower_assign(self, stmt: ast.stmt) -> list[Stmt]:
        value = getattr(stmt, "value", None)
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        ops: list[Stmt] = []
        if value is None:
            return ops
        target0 = targets[0] if targets else None
        if isinstance(value, ast.Call):
            ops.extend(self._call_ops(value, target=target0))
            for arg in value.args:
                ops.extend(self._calls_in(arg))
            for kw in value.keywords:
                ops.extend(self._calls_in(kw.value))
        else:
            ops.extend(self._calls_in(value))
            for target in targets:
                self._propagate(target, value)
                if (isinstance(target, ast.Attribute)
                        and self.model.escapes
                        and self.model.escapes[-1][1] == stmt.lineno):
                    ops.append(_op(ESCAPE, self.model.escapes[-1][0],
                                   stmt.lineno))
        return ops + self._payload_read(stmt, value)

    def _lower_if(self, stmt: ast.If) -> list[Stmt]:
        test_text = _text(stmt.test).lower()
        ops: list[Stmt] = []
        if "cold" in test_text:
            ops.append(_op(COLD_GUARD, test_text, stmt.lineno))
        ops.append(_op(GUARD, test_text, stmt.lineno))
        ops.extend(self._calls_in(stmt.test))
        then_body = self.lower(stmt.body)
        else_body = self.lower(stmt.orelse)
        ops.append(If(then_body=then_body, else_body=else_body))
        return ops

    def _lower_for(self, stmt: ast.For | ast.AsyncFor) -> list[Stmt]:
        ops: list[Stmt] = []
        # ``for v in tier.swap_in(..)`` / ``for v in views``: the loop
        # var aliases the iterated export.
        if isinstance(stmt.iter, ast.Call):
            ops.extend(self._call_ops(stmt.iter, target=stmt.target))
        else:
            ops.extend(self._calls_in(stmt.iter))
            base = stmt.iter
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name) and isinstance(stmt.target,
                                                         ast.Name):
                if base.id in self.aliases:
                    self.aliases[stmt.target.id] = self.aliases[base.id]
                if base.id in self.adopted:
                    self.adopted.add(stmt.target.id)
        body = self.lower(stmt.body)
        ops.append(Loop(body=body))
        ops.extend(self.lower(stmt.orelse))
        return ops

    def _lower_try(self, stmt: ast.Try) -> list[Stmt]:
        guards_buffer = any(
            handler.type is not None and "BufferError" in _text(handler.type)
            for handler in stmt.handlers)
        if guards_buffer:
            self._buffer_guard_depth += 1
        body = list(self.lower(stmt.body))
        if guards_buffer:
            self._buffer_guard_depth -= 1
        out: list[Stmt] = body
        for handler in stmt.handlers:
            handler_body = self.lower(handler.body)
            if handler_body:
                out.append(If(then_body=handler_body))
        out.extend(self.lower(stmt.orelse))
        out.extend(self.lower(stmt.finalbody))
        return out


# -- module lowering ---------------------------------------------------------

def _collect_functions(tree: ast.Module, module: str,
                       relpath: str) -> list[FuncModel]:
    """Walk a module's top level and class bodies, one model per def."""
    models: list[FuncModel] = []

    def add(node: ast.FunctionDef | ast.AsyncFunctionDef,
            cls: str | None) -> None:
        qualname = f"{cls}.{node.name}" if cls else node.name
        name_l = node.name.lower()
        models.append(FuncModel(
            module=module, relpath=relpath, qualname=qualname, cls=cls,
            name=node.name, lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            method=Method(name=f"{module}.{qualname}"),
            growlike=("grow" in name_l or "remap" in name_l),
            is_teardown=_is_teardown_name(node.name),
            cache_entry_class=bool(cls and cls.endswith("CacheEntry"))))

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, None)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(sub, node.name)
    return models


def lower_module(source: str, module: str,
                 relpath: str) -> list[FuncModel]:
    """Parse and lower one module into per-function IR models."""
    tree = ast.parse(source)
    models = _collect_functions(tree, module, relpath)
    # Two-pass: register every function's Method first so intra-module
    # calls can reference callees lowered later; then fill the bodies.
    by_name: dict[str, Method] = {}
    node_of: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node_of.setdefault(node.name, node)
    for model in models:
        # Last binding wins on name collisions across classes — the
        # textual resource tokens keep any imprecision harmless.
        by_name[model.name] = model.method
    for model in models:
        node = node_of.get(model.name)
        if node is None:  # pragma: no cover - models come from node walk
            continue
        lowerer = _Lowerer(model, by_name)
        model.method.body = lowerer.lower(node.body)
    return models


def build_scope(models: list[FuncModel]) -> CallGraph:
    """The engine scope: a synthetic root calling every lowered function."""
    root = Method(name="engine:root",
                  body=tuple(Call(target=None, method=m.method)
                             for m in models))
    return CallGraph.build(root)


# -- path enumeration --------------------------------------------------------

def _enumerate_paths(body: tuple[Stmt, ...], depth: int = 0,
                     stack: frozenset[int] = frozenset(),
                     ) -> list[tuple[tuple[PathOp, ...], bool]]:
    """All bounded op paths through *body* as ``(ops, terminated)``."""
    alive: list[list[PathOp]] = [[]]
    done: list[list[PathOp]] = []
    for stmt in body:
        if not alive:
            break
        if isinstance(stmt, Call):
            method = stmt.method
            if method.name.startswith("op:"):
                op = PathOp(method.name[3:], stmt.receiver or "",
                            int(stmt.target or "0"), depth)
                for path in alive:
                    path.append(op)
            elif (depth < INLINE_DEPTH and id(method) not in stack
                    and method.body):
                sub = _enumerate_paths(method.body, depth + 1,
                                       stack | {id(method)})
                # A callee return resumes the caller: termination flags
                # do not propagate upward.
                alive = [path + list(ops) for path in alive
                         for ops, _term in sub][:PATH_LIMIT]
        elif isinstance(stmt, If):
            arms = (_enumerate_paths(stmt.then_body, depth, stack)
                    + _enumerate_paths(stmt.else_body, depth, stack))
            next_alive: list[list[PathOp]] = []
            for path in alive:
                for ops, term in arms:
                    merged = path + list(ops)
                    (done if term else next_alive).append(merged)
            alive = next_alive[:PATH_LIMIT]
            del done[PATH_LIMIT:]
        elif isinstance(stmt, Loop):
            sub = _enumerate_paths(stmt.body, depth, stack)
            next_alive = []
            for path in alive:
                next_alive.append(path)     # zero iterations
                for ops, term in sub:       # one widened iteration
                    merged = path + list(ops)
                    (done if term else next_alive).append(merged)
            alive = next_alive[:PATH_LIMIT]
            del done[PATH_LIMIT:]
        elif isinstance(stmt, Return):
            done.extend(alive)
            alive = []
    return ([(tuple(p), True) for p in done[:PATH_LIMIT]]
            + [(tuple(p), False) for p in alive[:PATH_LIMIT]])


# -- rule predicates ---------------------------------------------------------

def _loc(model: FuncModel, line: int) -> str:
    return f"src/repro/{model.relpath}:{line}"


def _subject(model: FuncModel) -> str:
    return f"{model.module}.{model.qualname}"


def _ownership_why(resource: str, group: str) -> str:
    """DECA304's provenance step, phrased via the §4.3 ownership rules."""
    site = CreationSite(name=resource, udt=ClassType("memoryview"),
                        stage_id=0)
    binding = PointsToBinding(site)
    binding.bind(ContainerRef(ContainerKind.CACHE_BLOCK, group, 0, 0))
    binding.bind(ContainerRef(ContainerKind.UDF_VARIABLES,
                              "escaped-handle", 0, 1))
    ownership = assign_ownership(binding)
    return (f"ownership: primary container is {ownership.primary.name!r} "
            f"(kind {ownership.primary.kind.value}); the escaped handle "
            "is a secondary holder the reclaim protocol never sees")


def check_function(model: FuncModel, target: str) -> list[Finding]:
    """Run every DECA30x predicate over one function's paths."""
    findings: list[Finding] = []
    seen: set[tuple[str, str]] = set()

    def emit(rule: str, message: str, line: int, dedup: str,
             why: tuple[str, ...]) -> None:
        key = (rule, dedup)
        if key in seen:
            return
        seen.add(key)
        findings.append(make_finding(
            rule, target, _subject(model), message,
            location=_loc(model, line), why=why))

    paths = _enumerate_paths(model.method.body)
    all_ops = [op for ops, _term in paths for op in ops]

    # DECA305: function-level — any unretired remap in a grow/remap path.
    if model.growlike:
        for op in all_ops:
            if op.kind == REMAP_UNSAFE and op.depth == 0:
                emit("DECA305",
                     f"{model.qualname} replaces the backing mapping in "
                     "place (no retire-on-BufferError protocol); every "
                     "exported view dangles",
                     op.line, model.qualname, (
                         f"remap: in-place mapping change at line "
                         f"{op.line}",
                         "protocol: grow must keep the old mapping alive "
                         "while views are exported (tier._retired)"))
                break

    # DECA308: function-level — a drain whose copies nothing later frees.
    drains = [op for op in all_ops if op.kind == DRAIN and op.depth == 0]
    if drains:
        first = min(drains, key=lambda op: op.line)
        released = any(op.kind == RELEASE_COPY and op.line >= first.line
                       for op in all_ops)
        if not released:
            emit("DECA308",
                 f"{model.qualname} drains {first.resource!r} but never "
                 "shrinks or frees the transient copies",
                 first.line, model.qualname, (
                     f"drain: transient copies charged at line "
                     f"{first.line}",
                     "no shrink()/free_group() follows on any path"))

    for ops, terminated in paths:
        # DECA301/302: an export whose backing dies before any release.
        live: dict[str, int] = {}
        freed: set[str] = set()
        adopted_res: set[str] = set()
        for op in ops:
            if op.kind == EXPORT:
                live[op.resource] = op.line
                freed.discard(op.resource)
            elif op.kind == RELEASE:
                live.pop(op.resource, None)
            elif op.kind == ALLOC:
                freed.discard(op.resource)
            elif op.kind == ADOPT:
                adopted_res.add(op.resource)
            elif op.kind in (FREE, SEGRELEASE, UNLINK):
                resource = op.resource
                export_line = live.get(resource)
                if export_line is not None:
                    if resource.startswith("segment:"):
                        rule, what = "DECA302", "segment unlink/release"
                    else:
                        rule, what = "DECA301", "extent drop"
                    emit(rule,
                         f"view of {resource!r} exported at line "
                         f"{export_line} is still borrowed when the "
                         f"{what} at line {op.line} recycles its bytes",
                         op.line, f"{model.qualname}:{resource}", (
                             f"export: {resource} borrowed at line "
                             f"{export_line}",
                             "no release() on this path",
                             f"free: backing dies at line {op.line}"))
                # DECA303: a second free of the same backing.
                if op.kind in (FREE, UNLINK) or op.resource != "segment:*":
                    if resource in freed:
                        emit("DECA303",
                             f"{resource!r} is freed twice on one path "
                             f"(second free at line {op.line})",
                             op.line, f"{model.qualname}:{resource}:df", (
                                 f"first free on this path precedes line "
                                 f"{op.line}",
                                 "no reallocation between the frees"))
                    freed.add(resource)

        # DECA304: an adopted view's second handle escapes the function.
        for op in ops:
            if op.kind == ESCAPE and op.resource in adopted_res:
                emit("DECA304",
                     f"a view of {op.resource!r} escapes at line "
                     f"{op.line} after its adoption; the handle "
                     "outlives the group's reclaim",
                     op.line, f"{model.qualname}:{op.resource}", (
                         f"adopt: group takes ownership of {op.resource}",
                         f"escape: second handle kept at line {op.line}",
                         _ownership_why(op.resource, "page-group")))

        # DECA307: payload read with no cold check on this path.
        if model.cache_entry_class:
            guarded = False
            for op in ops:
                if op.kind == COLD_GUARD:
                    guarded = True
                elif op.kind == PAYLOAD_READ and not guarded:
                    emit("DECA307",
                         f"{model.qualname} reads the entry payload at "
                         f"line {op.line} without consulting the cold "
                         "flag; a demoted entry's bytes are stale",
                         op.line, model.qualname, (
                             f"read: payload access at line {op.line}",
                             "no `if self.cold` guard dominates it"))
                    break

    # DECA306: a teardown path returns early past its siblings' cleanup.
    if model.is_teardown:
        releasing_paths = [ops for ops, _term in paths
                           if any(op.kind in _RELEASING and op.depth == 0
                                  for op in ops)]
        if releasing_paths:
            for ops, terminated in paths:
                if not terminated:
                    continue
                if any(op.kind in _RELEASING and op.depth == 0
                       for op in ops):
                    continue
                final = next((op for op in reversed(ops)
                              if op.depth == 0
                              and op.kind in (RETURN, RAISE)), None)
                if final is None or final.kind == RAISE:
                    continue
                if final.line >= model.end_lineno:
                    continue  # the function's normal final return
                last_guard = next((op for op in reversed(ops)
                                   if op.kind == GUARD and op.depth == 0),
                                  None)
                if last_guard is not None and any(
                        word in last_guard.resource
                        for word in _IDEMPOTENT_WORDS):
                    continue  # idempotence / nothing-to-do guard
                emit("DECA306",
                     f"{model.qualname} can return at line {final.line} "
                     "without the release/drop calls its other paths "
                     "perform",
                     final.line, f"{model.qualname}:{final.line}", (
                         f"early return at line {final.line}",
                         "sibling paths release borrows/extents; this "
                         "one does not",
                         "guard is not an idempotence check"))
    return findings


# -- entry points ------------------------------------------------------------

def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def analyze_source(source: str, module: str, relpath: str,
                   target: str = "engine") -> list[Finding]:
    """Borrow-check one module's source text."""
    models = lower_module(source, module, relpath)
    findings: list[Finding] = []
    for model in models:
        findings.extend(check_function(model, target))
    return findings


def run_borrow_rules(modules: tuple[tuple[str, str], ...] = ENGINE_MODULES,
                     target: str = "engine",
                     ) -> tuple[tuple[Finding, ...], dict[str, object]]:
    """Borrow-check *modules*; returns (findings, summary)."""
    root = _package_root()
    findings: list[Finding] = []
    functions = 0
    scope_methods = 0
    for module, relpath in modules:
        source = (root / relpath).read_text()
        models = lower_module(source, module, relpath)
        functions += len(models)
        scope_methods += len(build_scope(models).methods)
        for model in models:
            findings.extend(check_function(model, target))
    summary: dict[str, object] = {
        "shadow": False,
        "modules": len(modules),
        "functions": functions,
        "scope_methods": scope_methods,
        "borrow_findings": len(findings),
    }
    return sort_findings(list(findings)), summary
