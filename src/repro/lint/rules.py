"""The static deca-lint rules (``DECA001``–``DECA007``).

Each rule walks the same artifacts the classification pipeline produces —
the UDT model, the per-stage call graph, the symbolized-constant facts and
the optimizer's :class:`~repro.core.optimizer.PlanReport` stream — and
emits findings whose ``why`` chains are the provenance steps of
:func:`repro.analysis.explain.explain_provenance`, so a finding always
shows the algorithm trail that led to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.callgraph import CallGraph
from ..analysis.explain import Provenance, explain_provenance
from ..analysis.global_refine import GlobalClassifier
from ..analysis.phased import Phase, PhasedClassifier
from ..analysis.symconst import Affine
from ..analysis.udt import ArrayType, ClassType, Field, PrimitiveType, \
    type_dependency_cycle, walk_types
from ..core.optimizer import PlanReport
from ..spark.rdd import UdtInfo
from .findings import Finding, make_finding


@dataclass(frozen=True)
class LintTarget:
    """One container-of-records the linter audits.

    *container* is ``"cache"`` or ``"shuffle"`` (the two primary container
    families of §4.2); *phases*/*materialized_fields*/*container_phase*
    describe the phased refinement context (§3.4) when the target's
    classification rests on another phase's work.
    """

    name: str
    udt_info: UdtInfo
    container: str
    location: str = "src/repro/apps/udts.py"
    phases: tuple[Phase, ...] = ()
    materialized_fields: tuple[Field, ...] = ()
    container_phase: str | None = None

    def assumed_fields(self) -> tuple[Field, ...]:
        """All fields whose init-only status is assumed, deduplicated."""
        seen: dict[int, Field] = {}
        for field in (*self.udt_info.assume_init_only,
                      *self.materialized_fields):
            seen.setdefault(id(field), field)
        return tuple(seen.values())


def run_static_rules(target: LintTarget) -> list[Finding]:
    """Run every static rule against *target*."""
    findings: list[Finding] = []
    info = target.udt_info
    callgraph = info.callgraph()
    assumed = target.assumed_fields()
    provenance = explain_provenance(
        info.udt, callgraph, assume_init_only=assumed,
        assumption_source=_vouching_phase(target))

    findings.extend(_check_recursive(target, provenance))
    findings.extend(_check_assumed_elements(target, assumed, provenance))
    if callgraph is not None:
        classifier = GlobalClassifier(
            callgraph, assume_init_only=assumed,
            assumption_source=_vouching_phase(target))
        findings.extend(_check_mutable_fields(target, classifier,
                                              provenance))
        findings.extend(_check_phase_escapes(target, callgraph, assumed,
                                             provenance))
        findings.extend(_check_symbolic_lengths(target, classifier,
                                                provenance))
    return findings


def run_plan_rules(app: str, reports: tuple[PlanReport, ...],
                   targets: tuple[LintTarget, ...]) -> list[Finding]:
    """Rules over the optimizer's decomposition decisions.

    ``DECA005`` — a decomposition plan contradicting the (phased)
    classification; ``DECA006`` — containers holding records the analysis
    never saw.
    """
    findings: list[Finding] = []
    for report in reports:
        report_target = f"{app}/{report.target}"
        if report.udt is None:
            kind = ("cache block" if report.target.startswith("cache:")
                    else "shuffle buffer")
            findings.append(make_finding(
                "DECA006", report_target, report.target,
                f"{kind} holds records with no declared UDT; the analysis "
                f"never saw their type and they stay in object form "
                f"({report.reason})",
                why=(f"[optimizer.plan] {report.reason}",)))
            continue
        if not report.decomposed:
            continue
        if report.global_size_type is None \
                or not report.global_size_type.decomposable:
            claimed = (report.global_size_type.value
                       if report.global_size_type else "?")
            findings.append(make_finding(
                "DECA005", report_target, report.udt,
                f"plan decomposed {report.udt} although its global "
                f"size-type is {claimed} — only SFSTs/RFSTs may be "
                "decomposed (§3.1)",
                why=(f"[optimizer.plan] {report.reason}",)))
            continue
        findings.extend(_check_phase_contradiction(app, report, targets))
    return findings


# -- DECA001 ----------------------------------------------------------------
def _check_mutable_fields(target: LintTarget,
                          classifier: GlobalClassifier,
                          provenance: Provenance) -> list[Finding]:
    findings: list[Finding] = []
    for node in walk_types(target.udt_info.udt):
        if not isinstance(node, ClassType):
            continue
        for field in node.fields:
            if field.name == "<element>" or field.final:
                continue
            holds_rfst = any(
                not isinstance(t, PrimitiveType)
                and not classifier.srefine(t)
                and classifier.rrefine(t)
                for t in field.get_type_set())
            if holds_rfst and not classifier.is_init_only(field):
                subject = f"{node.name}.{field.name}"
                findings.append(make_finding(
                    "DECA001", target.name, subject,
                    f"non-final field {subject} holds runtime-fixed "
                    "types and is reassigned in scope; the reassignment "
                    "can change the record's data-size, so "
                    f"{target.udt_info.udt.name} stays variable-sized "
                    "and is kept in object form",
                    location=target.location,
                    why=_why(provenance, subjects=(subject,))))
    return findings


# -- DECA002 ----------------------------------------------------------------
def _check_phase_escapes(target: LintTarget, callgraph: CallGraph,
                         assumed: tuple[Field, ...],
                         provenance: Provenance) -> list[Finding]:
    findings: list[Finding] = []
    for field in assumed:
        if field.name == "<element>":
            continue  # DECA007's business
        if not callgraph.stores_outside_constructors(field):
            continue
        owner = callgraph.field_owner(field)
        subject = (f"{owner.name}.{field.name}" if owner is not None
                   else field.name)
        vouched_by = _vouching_phase(target)
        vouched = (f"phase {vouched_by!r}" if vouched_by
                   else "an earlier phase")
        findings.append(make_finding(
            "DECA002", target.name, subject,
            f"field {subject} is vouched init-only by {vouched}, but "
            "this phase's own code assigns it — the reference escapes "
            "the phase boundary and the init-only assumption is unsound",
            location=target.location,
            why=_why(provenance, subjects=(subject,))))
    return findings


# -- DECA003 ----------------------------------------------------------------
def _check_recursive(target: LintTarget,
                     provenance: Provenance) -> list[Finding]:
    udt = target.udt_info.udt
    cycle = type_dependency_cycle(udt)
    if cycle is None:
        return []
    path = " -> ".join(t.name for t in cycle)
    return [make_finding(
        "DECA003", target.name, udt.name,
        f"{udt.name} has a cyclic type dependency graph ({path}); "
        "recursively-defined types can never be decomposed (§3.1)",
        location=target.location,
        why=_why(provenance, rules=("algorithm-1.recursive",)))]


# -- DECA004 ----------------------------------------------------------------
def _check_symbolic_lengths(target: LintTarget,
                            classifier: GlobalClassifier,
                            provenance: Provenance) -> list[Finding]:
    findings: list[Finding] = []
    info = target.udt_info
    facts = classifier.callgraph.facts
    for node in walk_types(info.udt):
        if not isinstance(node, ArrayType):
            continue
        if classifier.is_assumed_fixed_length(node):
            continue
        if not classifier.is_fixed_length(node):
            continue
        sites = facts.sites_for_type(node)
        if not sites:
            continue
        length = sites[0].length
        if not isinstance(length, Affine) or length.is_constant:
            continue
        unresolved = sorted(label for label, _ in length.coeffs
                            if label not in info.runtime_symbols)
        if not unresolved:
            continue
        symbols = ", ".join(unresolved)
        findings.append(make_finding(
            "DECA004", target.name, node.name,
            f"{node.name} is proved fixed-length, but the proof rests on "
            f"symbolic constant(s) {symbols} with no runtime binding; "
            "the hybrid optimizer (App. A) cannot resolve the length at "
            "plan time and falls back to a length-prefixed layout",
            location=target.location,
            why=_why(provenance, subjects=(node.name,))))
    return findings


# -- DECA005 (phase contradiction) ------------------------------------------
def _check_phase_contradiction(app: str, report: PlanReport,
                               targets: tuple[LintTarget, ...]
                               ) -> list[Finding]:
    container = "cache" if report.target.startswith("cache:") else "shuffle"
    for target in targets:
        if target.udt_info.udt.name != report.udt \
                or target.container != container:
            continue
        if not target.phases or target.container_phase is None:
            continue
        phased = PhasedClassifier(target.phases)
        phase_report = phased.classify(target.udt_info.udt,
                                       target.materialized_fields)
        in_phase = phase_report.size_type_in(target.container_phase)
        if not in_phase.decomposable:
            return [make_finding(
                "DECA005", f"{app}/{report.target}", report.udt,
                f"plan decomposed {report.udt} in the {container}, but "
                f"the phased classification says it is {in_phase.value} "
                f"in phase {target.container_phase!r} — the plan "
                "contradicts the classification (§3.4)",
                location=target.location,
                why=tuple(f"[algorithm-2.phased] phase {name!r}: "
                          f"{size_type.value}"
                          for name, size_type in phase_report.by_phase))]
    return []


# -- DECA007 ----------------------------------------------------------------
def _check_assumed_elements(target: LintTarget,
                            assumed: tuple[Field, ...],
                            provenance: Provenance) -> list[Finding]:
    findings: list[Finding] = []
    for field in assumed:
        if field.name != "<element>":
            continue
        findings.append(make_finding(
            "DECA007", target.name, f"{target.udt_info.udt.name}.<element>",
            "an array element field is assumed init-only; element fields "
            "never qualify (§3.3 rule 2: any element may be assigned any "
            "number of times), so the assumption is unsound",
            location=target.location,
            why=_why(provenance, rules=("verdict",))))
    return findings


# -- shared helpers ---------------------------------------------------------
_ALWAYS_RULES = ("algorithm-1.local", "algorithm-2.global", "verdict")


def _why(provenance: Provenance, subjects: tuple[str, ...] = (),
         rules: tuple[str, ...] = ()) -> tuple[str, ...]:
    """Render the provenance steps relevant to one finding.

    Always includes the per-algorithm verdict steps so every chain reads
    as a complete argument, plus the steps about the named subjects.
    """
    out = []
    for step in provenance.steps:
        if step.rule in _ALWAYS_RULES or step.rule in rules \
                or step.subject in subjects:
            out.append(f"[{step.rule}] {step.detail}")
    return tuple(out)


def _vouching_phase(target: LintTarget) -> str | None:
    """The phase that materialized the target's assumed fields, if known."""
    if not target.materialized_fields or not target.phases:
        return None
    phased = PhasedClassifier(target.phases)
    for index in range(len(target.phases)):
        source = phased.assumption_source(index)
        if source is not None:
            return source
    return None


__all__ = [
    "LintTarget",
    "run_plan_rules",
    "run_static_rules",
]
