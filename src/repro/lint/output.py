"""Lint output: text, JSON and SARIF renderings plus baseline diffing.

The JSON payload is deterministic (sorted findings, integer-only
summaries, no timestamps) and is serialized exactly like
:func:`repro.bench.report.write_json_result` writes it, so CI can ``cmp``
a fresh run's file against the committed baseline byte for byte.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import AppLintResult, LintReport
from .findings import RULES, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://json.schemastore.org/sarif-2.1.0.json")

# The finding keys that identify a diagnostic across runs (the "why"
# chain and location are presentation, not identity).
_IDENTITY_KEYS = ("rule", "severity", "target", "subject", "message")


def report_payload(report: LintReport) -> dict[str, Any]:
    """The canonical machine-readable form of a lint run."""
    apps = []
    for result in report.apps:
        apps.append({
            "app": result.app,
            "title": result.title,
            "counts": _counts(result),
            "findings": [f.to_dict() for f in result.findings],
            "summary": result.summary,
        })
    return {
        "tool": "deca-lint",
        "apps": apps,
        "totals": {
            "error": report.count(Severity.ERROR),
            "warning": report.count(Severity.WARNING),
            "note": report.count(Severity.NOTE),
            "findings": len(report.all_findings()),
        },
    }


def _counts(result: AppLintResult) -> dict[str, int]:
    return {severity.value: result.count(severity)
            for severity in Severity}


def serialize(payload: Any) -> str:
    """Byte-stable JSON text (same shape ``write_json_result`` writes)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(report: LintReport) -> str:
    """Human-readable rendering, one block per app."""
    lines: list[str] = []
    for result in report.apps:
        counts = _counts(result)
        lines.append(f"{result.title} ({result.app}): "
                     f"{counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['note']} note(s)")
        for finding in result.findings:
            lines.append(f"  {finding.rule_id} [{finding.severity.value}] "
                         f"{finding.target} :: {finding.subject}")
            lines.append(f"      {finding.message}")
            for step in finding.why:
                lines.append(f"      why: {step}")
        summary = result.summary
        if summary.get("shadow"):
            lines.append(f"  shadow: {summary.get('page_records', 0)} page "
                         f"records, {summary.get('sudt_writes', 0)} SUDT "
                         f"writes, {summary.get('resize_attempts', 0)} "
                         "resize attempts")
        closures = summary.get("closures")
        if isinstance(closures, dict):
            lines.append(
                f"  closures: {closures.get('udfs_analyzed', 0)}/"
                f"{closures.get('udf_sites', 0)} UDFs analyzed, "
                f"{closures.get('udfs_nondeterministic', 0)} "
                f"nondeterministic, {closures.get('double_runs', 0)} "
                f"double-run(s), "
                f"{closures.get('double_run_mismatches', 0)} mismatch(es)")
        lines.append("")
    totals = report_payload(report)["totals"]
    lines.append(f"deca-lint: {totals['findings']} finding(s) — "
                 f"{totals['error']} error(s), {totals['warning']} "
                 f"warning(s), {totals['note']} note(s)")
    return "\n".join(lines)


def to_sarif(report: LintReport) -> dict[str, Any]:
    """A SARIF 2.1.0 log of the run (severities map to SARIF levels)."""
    rules = [{
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": rule.severity.value},
        "properties": {"paper": rule.paper},
    } for rule in RULES]

    results = []
    for app_result in report.apps:
        for finding in app_result.findings:
            result: dict[str, Any] = {
                "ruleId": finding.rule_id,
                "level": finding.severity.value,
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.location
                                   or "src/repro/apps/udts.py",
                        },
                    },
                    "logicalLocations": [{
                        "fullyQualifiedName":
                            f"{finding.target}::{finding.subject}",
                    }],
                }],
                "properties": {
                    "app": app_result.app,
                    "why": list(finding.why),
                },
            }
            results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "deca-lint",
                    "informationUri":
                        "https://github.com/paper-repro/deca",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def filter_report(report: LintReport,
                  prefixes: tuple[str, ...]) -> LintReport:
    """A copy of *report* keeping only findings whose rule id starts
    with one of *prefixes* (``("DECA2",)`` keeps the closure family).

    Per-app summaries are preserved untouched — they describe the run,
    not the filtered view.
    """
    if not prefixes:
        return report
    apps = tuple(
        AppLintResult(
            app=result.app, title=result.title,
            findings=tuple(f for f in result.findings
                           if f.rule_id.startswith(prefixes)),
            summary=result.summary)
        for result in report.apps)
    return LintReport(apps=apps)


def finding_identities(payload: dict[str, Any]) -> set[str]:
    """The identity set of a payload's findings, for baseline diffing."""
    identities: set[str] = set()
    for app in payload.get("apps", ()):
        for finding in app.get("findings", ()):
            identity = {"app": app.get("app", "")}
            identity.update({key: finding.get(key, "")
                             for key in _IDENTITY_KEYS})
            identities.add(json.dumps(identity, sort_keys=True))
    return identities


def baseline_diff(current: dict[str, Any],
                  baseline: dict[str, Any]) -> list[str]:
    """Findings present now but absent from the baseline (sorted)."""
    return sorted(finding_identities(current)
                  - finding_identities(baseline))
