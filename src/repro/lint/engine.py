"""The lint driver: static rules + shadow validation, per application.

``lint_app`` audits one registered application: it runs every static rule
over the app's targets, then (unless disabled) executes the app's shadow
run with the runtime instrumented, checks the optimizer's decomposition
plans and the observed memory behaviour, and folds everything into one
deterministic :class:`AppLintResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .borrow import run_borrow_rules
from .closure_rules import run_closure_rules
from .race import run_race_rules
from .findings import Finding, Severity, sort_findings
from .rules import run_plan_rules, run_static_rules
from .shadow import (
    ShadowRecorder,
    check_arena_accounting,
    check_imprecision,
    check_observations,
    shadow_summary,
)
from .targets import LINT_APPS, LINT_APPS_BY_NAME, LintApp


@dataclass(frozen=True)
class AppLintResult:
    """Everything the linter concluded about one application."""

    app: str
    title: str
    findings: tuple[Finding, ...]
    summary: dict[str, object]

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)


@dataclass(frozen=True)
class LintReport:
    """All per-app results of one lint run."""

    apps: tuple[AppLintResult, ...]

    def all_findings(self) -> tuple[Finding, ...]:
        return tuple(f for result in self.apps for f in result.findings)

    def count(self, severity: Severity) -> int:
        return sum(result.count(severity) for result in self.apps)

    @property
    def has_errors(self) -> bool:
        return self.count(Severity.ERROR) > 0


def lint_app(app: LintApp, shadow: bool = True) -> AppLintResult:
    """Audit one application; *shadow* disables the instrumented run."""
    targets = app.make_targets()
    findings: list[Finding] = []
    for target in targets:
        findings.extend(run_static_rules(target))

    summary: dict[str, object] = {"shadow": shadow}
    if shadow:
        with ShadowRecorder() as recorder:
            ctx = app.shadow_run()
        optimizer = ctx._optimizer
        reports = tuple(optimizer.reports) if optimizer is not None else ()
        findings.extend(run_plan_rules(app.name, reports, targets))
        findings.extend(check_observations(app.name, recorder, reports))
        findings.extend(check_arena_accounting(app.name, recorder,
                                               reports))
        findings.extend(check_imprecision(app.name, ctx, reports))
        summary.update(shadow_summary(recorder, reports))
        # Closure rules go last: the differential double-run replays
        # tasks on the finished context, which must not perturb the
        # recorder-based checks above.
        closure_findings, closure_summary = run_closure_rules(app.name,
                                                              ctx)
        findings.extend(closure_findings)
        summary["closures"] = closure_summary

    return AppLintResult(app=app.name, title=app.title,
                         findings=sort_findings(findings),
                         summary=summary)


#: Name of the pseudo-app auditing the engine itself (DECA301–308).
ENGINE_APP = "engine"

#: Name of the pseudo-app race-checking the engine (DECA401–410).
RACE_APP = "race"

#: Pseudo-apps ride along with the full registry, in this order.
PSEUDO_APPS = (ENGINE_APP, RACE_APP)


def lint_engine() -> AppLintResult:
    """Borrow-check the engine's zero-copy modules (DECA301–DECA308).

    Unlike the registered apps, the target here is the engine source
    itself: the mmap tier, page groups, cache store and shm plumbing.
    There is no shadow run — the dynamic counterpart is the runtime
    sanitizer (``REPRO_SANITIZE=1``).
    """
    findings, summary = run_borrow_rules(target=ENGINE_APP)
    return AppLintResult(
        app=ENGINE_APP,
        title="Engine zero-copy borrow audit (DECA301–308)",
        findings=findings, summary=summary)


def lint_race() -> AppLintResult:
    """Race-check the engine's concurrency surface (DECA401–DECA410).

    Like :func:`lint_engine`, the target is the engine source itself —
    the mp backend, the shm protocol, the scheduler/shuffle pair, the
    arena and the cold tier.  No shadow run; the dynamic counterpart is
    the vector-clock sanitizer (:mod:`repro.obs.vclock`).
    """
    findings, summary = run_race_rules(target=RACE_APP)
    return AppLintResult(
        app=RACE_APP,
        title="Engine concurrency race audit (DECA401–410)",
        findings=findings, summary=summary)


def resolve_apps(names: list[str]) -> tuple[LintApp, ...]:
    """Turn CLI app names into registry entries (``all`` = every app)."""
    if not names or names == ["all"]:
        return LINT_APPS
    apps = []
    for name in names:
        app = LINT_APPS_BY_NAME.get(name)
        if app is None:
            known = ", ".join(sorted(LINT_APPS_BY_NAME))
            raise KeyError(f"unknown lint app {name!r} (known: {known})")
        apps.append(app)
    return tuple(apps)


def run_lint(names: list[str], shadow: bool = True) -> LintReport:
    """Lint the named applications (``all``/empty = the full registry).

    The ``engine`` and ``race`` pseudo-apps (the zero-copy borrow audit
    and the concurrency race audit) ride along with the full registry
    and can be requested by name; they are never registry entries, so
    they must be filtered out before app resolution.
    """
    app_names = [name for name in names if name not in PSEUDO_APPS]
    requested = {name for name in names if name in PSEUDO_APPS}
    full_registry = not names or names == ["all"]
    results: list[AppLintResult] = []
    if full_registry or app_names:
        # resolve_apps([]) means "every registered app", so a bare
        # pseudo-app request must not reach it.
        results.extend(lint_app(app, shadow=shadow)
                       for app in resolve_apps(app_names))
    if full_registry or ENGINE_APP in requested:
        results.append(lint_engine())
    if full_registry or RACE_APP in requested:
        results.append(lint_race())
    return LintReport(apps=tuple(results))
