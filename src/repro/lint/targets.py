"""What deca-lint audits: one entry per benchmark application.

Each :class:`LintApp` bundles the static lint targets (the UDT-bearing
containers the app creates) with a small, fully seeded *shadow run* — the
app executed in DECA mode on a miniature dataset so the shadow validator
can observe the runtime's actual memory behaviour.  Everything here is
deterministic: the data generators take fixed seeds and the run emits no
wall-clock values, so two lint runs produce byte-identical JSON.

The targets rebuild their UDT models locally instead of reusing the app
modules' ``*_udt_info()`` helpers where phase information is needed: the
classifiers key fields and array types by object identity, so a target's
``udt_info`` and its ``phases`` must come from the *same* model instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis.callgraph import CallGraph
from ..analysis.phased import Phase
from ..apps.connected_components import (
    label_message_udt_info,
    run_connected_components,
)
from ..apps.kmeans import cluster_stat_udt_info, point_udt_info, run_kmeans
from ..apps.logistic_regression import (
    labeled_point_udt_info,
    run_logistic_regression,
)
from ..apps.pagerank import message_udt_info, run_pagerank
from ..apps.sql_queries import (
    ranking_udt_info,
    run_query1,
    run_query2,
    uservisit_udt_info,
)
from ..apps.udts import make_graph_model
from ..apps.wordcount import run_wordcount, wordcount_udt_info
from ..config import DecaConfig, ExecutionMode, MB
from ..data.graphs import power_law_graph
from ..data.tables import rankings_table, uservisits_table
from ..data.text import random_words
from ..data.vectors import clustered_points, labeled_points
from ..spark.context import DecaContext
from ..spark.rdd import UdtInfo
from .rules import LintTarget

UDTS_LOCATION = "src/repro/apps/udts.py"


@dataclass(frozen=True)
class LintApp:
    """One lintable application: its targets and its shadow run."""

    name: str
    title: str
    make_targets: Callable[[], tuple[LintTarget, ...]]
    shadow_run: Callable[[], DecaContext]


def _shadow_config(heap_mb: int = 32) -> DecaConfig:
    # Shadow runs use the unified arena so the DECA101 soundness check
    # can compare arena-observed page-group bytes against the static
    # size-type claims (check_arena_accounting).
    return DecaConfig(mode=ExecutionMode.DECA, heap_bytes=heap_mb * MB,
                      num_executors=2, tasks_per_executor=2,
                      memory_mode="unified")


# -- per-app target builders -------------------------------------------------
def _adjacency_target(app: str) -> LintTarget:
    """The PR/CC cached adjacency lists with their two-phase context.

    The ``neighbors`` array is a VST while ``groupByKey`` grows it (the
    *build* phase) and an RFST in the *iterate* phases that only read the
    cache — Fig. 7(b).  Built from one model instance so the phase call
    graphs and the UDT share field identities.
    """
    model = make_graph_model()
    info = UdtInfo(
        udt=model.adjacency,
        entry_method=model.iterate_stage_entry,
        known_types=(model.adjacency,),
        assume_init_only=(model.neighbors_field,),
    )
    known = (model.adjacency, model.rank_message, model.edge)
    phases = (
        Phase("build", CallGraph.build(model.build_stage_entry,
                                       known_types=known)),
        Phase("iterate", CallGraph.build(model.iterate_stage_entry,
                                         known_types=known),
              reads_materialized=True),
    )
    return LintTarget(
        name=f"{app}/cache:{app}.adjacency",
        udt_info=info,
        container="cache",
        location=UDTS_LOCATION,
        phases=phases,
        materialized_fields=(model.neighbors_field,),
        container_phase="iterate",
    )


def _lr_targets() -> tuple[LintTarget, ...]:
    return (LintTarget(name="lr/cache:lr.points",
                       udt_info=labeled_point_udt_info(8),
                       container="cache", location=UDTS_LOCATION),)


def _kmeans_targets() -> tuple[LintTarget, ...]:
    return (
        LintTarget(name="kmeans/cache:km.points",
                   udt_info=point_udt_info(6),
                   container="cache", location=UDTS_LOCATION),
        LintTarget(name="kmeans/shuffle:km.update",
                   udt_info=cluster_stat_udt_info(6),
                   container="shuffle",
                   location="src/repro/apps/kmeans.py"),
    )


def _wordcount_targets() -> tuple[LintTarget, ...]:
    return (LintTarget(name="wordcount/shuffle:wc.counts",
                       udt_info=wordcount_udt_info(),
                       container="shuffle", location=UDTS_LOCATION),)


def _pagerank_targets() -> tuple[LintTarget, ...]:
    return (
        _adjacency_target("pr"),
        LintTarget(name="pr/shuffle:pr.sumContribs",
                   udt_info=message_udt_info(),
                   container="shuffle", location=UDTS_LOCATION),
    )


def _cc_targets() -> tuple[LintTarget, ...]:
    return (
        _adjacency_target("cc"),
        LintTarget(name="cc/shuffle:cc.minLabel",
                   udt_info=label_message_udt_info(),
                   container="shuffle", location=UDTS_LOCATION),
    )


def _q1_targets() -> tuple[LintTarget, ...]:
    return (LintTarget(name="q1/cache:q1.rows",
                       udt_info=ranking_udt_info(),
                       container="cache", location=UDTS_LOCATION),)


def _q2_targets() -> tuple[LintTarget, ...]:
    return (LintTarget(name="q2/cache:q2.rows",
                       udt_info=uservisit_udt_info(),
                       container="cache", location=UDTS_LOCATION),)


# -- per-app shadow runs -----------------------------------------------------
def _lr_shadow() -> DecaContext:
    points = labeled_points(600, dimensions=8)
    run = run_logistic_regression(points, _shadow_config(),
                                  iterations=2, num_partitions=4)
    return run.ctx


def _kmeans_shadow() -> DecaContext:
    points = clustered_points(400, dimensions=6, clusters=4)
    run = run_kmeans(points, k=4, config=_shadow_config(),
                     iterations=2, num_partitions=4)
    return run.ctx


def _wordcount_shadow() -> DecaContext:
    words = random_words(1500, 120)
    run = run_wordcount(words, _shadow_config(), num_partitions=4)
    return run.ctx


def _pagerank_shadow() -> DecaContext:
    edges = power_law_graph(200, 1200)
    run = run_pagerank(edges, _shadow_config(), iterations=2,
                       num_partitions=4)
    return run.ctx


def _cc_shadow() -> DecaContext:
    edges = power_law_graph(150, 900)
    run = run_connected_components(edges, _shadow_config(), iterations=2,
                                   num_partitions=4)
    return run.ctx


def _q1_shadow() -> DecaContext:
    rankings = rankings_table(400)
    run = run_query1(rankings, _shadow_config(), num_partitions=4)
    return run.ctx


def _q2_shadow() -> DecaContext:
    visits = uservisits_table(500)
    run = run_query2(visits, _shadow_config(), num_partitions=4)
    return run.ctx


LINT_APPS: tuple[LintApp, ...] = (
    LintApp("lr", "Logistic Regression", _lr_targets, _lr_shadow),
    LintApp("kmeans", "KMeans", _kmeans_targets, _kmeans_shadow),
    LintApp("wordcount", "WordCount", _wordcount_targets,
            _wordcount_shadow),
    LintApp("pr", "PageRank", _pagerank_targets, _pagerank_shadow),
    LintApp("cc", "ConnectedComponent", _cc_targets, _cc_shadow),
    LintApp("q1", "SQL Query 1", _q1_targets, _q1_shadow),
    LintApp("q2", "SQL Query 2", _q2_targets, _q2_shadow),
)

LINT_APPS_BY_NAME: dict[str, LintApp] = {app.name: app
                                         for app in LINT_APPS}
