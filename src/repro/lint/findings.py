"""Structured lint findings and the deca-lint rule catalogue.

Every diagnostic the linter can emit has a stable rule id.  ``DECA0xx``
rules are *static*: they fire from the UDT model, method IR, call graph,
symbolized-constant facts and the optimizer's decomposition plans.
``DECA1xx`` rules are *differential*: the shadow validator compares what
the runtime actually did (record sizes, SUDT writes) against what the
static classification promised, reporting soundness violations and
imprecision.  ``DECA20x`` rules come from the bytecode-level closure
analyzer (:mod:`repro.analysis.closures`) over the user UDFs of each
app's lineage, and ``DECA21x`` rules are their differential counterpart:
a double-run shadow check that re-executes a sampled task twice and
diffs the outputs.

A :class:`Finding` is deterministic and JSON-round-trippable; its ``why``
chain carries the provenance steps of the classification that led to the
verdict (see :mod:`repro.analysis.explain`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """Finding severity; the values double as SARIF levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        """Sort rank: errors first."""
        return _SEVERITY_RANK[self.value]


_SEVERITY_RANK = {"error": 0, "warning": 1, "note": 2}


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: stable id, default severity, paper anchor."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    paper: str


RULES: tuple[Rule, ...] = (
    Rule("DECA001", "mutable-field-blocks-refinement", Severity.WARNING,
         "A non-final field holding runtime-fixed types is reassigned in "
         "scope; the reassignment forces the variable-sized verdict and "
         "keeps the type in object form", "§3.1/§3.3"),
    Rule("DECA002", "phase-boundary-escape", Severity.ERROR,
         "A field vouched init-only by an earlier phase is assigned by "
         "the current phase's own code — the reference escapes the phase "
         "boundary and the assumption is unsound", "§3.4"),
    Rule("DECA003", "recursive-type-set", Severity.WARNING,
         "The UDT's type dependency graph is cyclic; a recursively-"
         "defined type can never be decomposed", "§3.1"),
    Rule("DECA004", "unproven-symbolic-length", Severity.WARNING,
         "A fixed-length array proof rests on symbolic constants with no "
         "runtime binding; the hybrid optimizer cannot inline the array "
         "and falls back to a length-prefixed layout", "§3.3/App. A"),
    Rule("DECA005", "plan-contradicts-classification", Severity.ERROR,
         "The optimizer decomposed a container although the (phased) "
         "classification says its records are not safely decomposable "
         "there", "§3.4/§4.3"),
    Rule("DECA006", "unanalyzed-container-type", Severity.NOTE,
         "A cache/shuffle container holds records the analysis never "
         "saw (no UDT declared); they stay in object form", "§5"),
    Rule("DECA007", "element-field-init-only-assumption", Severity.ERROR,
         "An array element field is assumed init-only; element fields "
         "never qualify (§3.3 rule 2), so the assumption is unsound",
         "§3.3"),
    Rule("DECA101", "shadow-soundness-violation", Severity.ERROR,
         "The runtime resized records of a container the static analysis "
         "declared fixed-size (SFST/RFST)", "§3.1"),
    Rule("DECA102", "shadow-imprecision", Severity.NOTE,
         "The static analysis kept a container in object form although "
         "every observed record had the same data-size", "§3.1"),
    Rule("DECA201", "closure-illegal-capture", Severity.ERROR,
         "A UDF captures a live engine handle (DecaContext / RDD); the "
         "closure would ship the whole driver into every task", "§4"),
    Rule("DECA202", "closure-nondeterministic", Severity.WARNING,
         "A UDF reaches a nondeterminism source (random / time / "
         "os.environ / id / hash); retries, speculation and lineage "
         "re-execution can produce divergent results", "§4"),
    Rule("DECA203", "closure-iteration-order-hazard", Severity.WARNING,
         "A UDF iterates a captured set; the visit order is hash-seed "
         "dependent, so two runs can emit records in different orders",
         "§4"),
    Rule("DECA204", "closure-impure", Severity.WARNING,
         "A UDF has side effects (global stores, captured-cell writes, "
         "mutation through captured objects); re-executing it repeats "
         "the effects", "§4"),
    Rule("DECA205", "closure-record-escape", Severity.WARNING,
         "A UDF lets argument records outlive the call (stored into a "
         "captured container or closed over by an inner function); the "
         "lifetime analysis must handle the record conservatively",
         "§4.2"),
    Rule("DECA206", "closure-mutable-capture", Severity.NOTE,
         "A UDF captures a mutable container as a module-level global "
         "or default argument — shared state that concurrent or retried "
         "tasks can observe mid-update", "§4"),
    Rule("DECA211", "closure-shadow-nondeterminism", Severity.ERROR,
         "Re-executing a sampled task twice produced different outputs; "
         "the UDF is nondeterministic at runtime regardless of the "
         "static verdict", "§4"),
    Rule("DECA212", "closure-shadow-imprecision", Severity.NOTE,
         "A UDF the static analysis flagged nondeterministic produced "
         "identical outputs on a double-run; the sampled partition may "
         "simply not exercise the nondeterminism", "§4"),
    Rule("DECA301", "use-after-free-extent", Severity.ERROR,
         "A zero-copy view exported from a PageStoreTier extent reaches "
         "the extent's drop() on some path with no intervening release; "
         "the mmap bytes are recycled under the reader", "§4.3"),
    Rule("DECA302", "use-after-unlink-segment", Severity.ERROR,
         "A view over a shared-memory segment reaches the segment's "
         "release/unlink on some path with no intervening release; the "
         "reader holds a mapping the system already discarded", "§4.3"),
    Rule("DECA303", "double-free", Severity.ERROR,
         "An extent or segment is freed twice along one path with no "
         "reallocation between the frees; the second free returns a "
         "stranger's bytes to the free list", "§4.3"),
    Rule("DECA304", "view-escapes-adoption", Severity.ERROR,
         "A view adopted into a page group escapes through a second "
         "handle (stored, appended or returned) that outlives the "
         "group's reclaim; the refcount protocol is bypassed", "§4.3"),
    Rule("DECA305", "remap-invalidates-export", Severity.ERROR,
         "A grow/remap path replaces the backing mapping in place "
         "(resize / unguarded close) instead of retiring the old one; "
         "every exported view silently dangles", "§4.1"),
    Rule("DECA306", "leak-at-finish", Severity.WARNING,
         "A teardown path can return early without the release/drop "
         "calls its sibling paths perform; borrows and extents leak "
         "past the lifetime boundary", "§4.3"),
    Rule("DECA307", "cross-process-cold-alias", Severity.ERROR,
         "A cache entry's payload is read without consulting its cold "
         "flag; a demoted entry's shared bytes are stale and the "
         "authoritative copy lives in the mmap tier", "§4.2"),
    Rule("DECA308", "unreleased-drain-copy", Severity.WARNING,
         "A page-group drain's transient copies are never shrunk or "
         "freed after the drain; the double-buffer footprint outlives "
         "the swap it paid for", "§4.3"),
    Rule("DECA401", "unlink-concurrent-with-attach", Severity.ERROR,
         "A shared-memory segment is unlinked and then re-attached by "
         "name on one path with no refcount acquire between them; a "
         "concurrent attacher can map the deterministic name while the "
         "unlink is in flight (TOCTOU)", "§4.3/§5"),
    Rule("DECA402", "refcount-outside-lock", Severity.ERROR,
         "A segment refcount is mutated outside the registry lock in a "
         "class that takes the lock elsewhere; two concurrent mutators "
         "can interleave read-modify-write and lose a count", "§4.3"),
    Rule("DECA403", "demote-promote-race", Severity.ERROR,
         "A cache entry's cold flag is flipped after the backing bytes "
         "were already released/unlinked on the same path; a concurrent "
         "promote reads the flag against recycled bytes", "§4.2"),
    Rule("DECA404", "borrow-evict-lost-update", Severity.ERROR,
         "An arena pool level is read, the path blocks (queue get / "
         "join / sleep), and the stale reading then feeds a pool write; "
         "a concurrent borrow or evict between the read and the write "
         "is silently overwritten", "§4/§5"),
    Rule("DECA405", "wave-barrier-bypass", Severity.ERROR,
         "A task result is consumed before the wave barrier (worker "
         "join / gather) on some path; the driver reads bytes the "
         "producing worker may still be writing", "§5"),
    Rule("DECA406", "orphan-sweep-live-worker", Severity.ERROR,
         "An orphan-segment sweep runs on a path with no preceding "
         "worker-death confirmation; a live worker's in-flight segments "
         "are unlinked under it", "§5"),
    Rule("DECA407", "reentrant-spill-victim", Severity.ERROR,
         "A spill victim is selected with no in-flight guard on the "
         "path; a re-entrant eviction (pressure raised by the spill's "
         "own transients) can re-select the block mid-swap and drain "
         "its pages twice", "§4.2/App. C"),
    Rule("DECA408", "readonly-page-write", Severity.ERROR,
         "A view adopted read-only from an attached segment is written "
         "through in the consumer process; the write races every other "
         "attacher of the same physical bytes", "§4.3"),
    Rule("DECA409", "trace-relay-reorder", Severity.WARNING,
         "Worker trace events are relayed onto the driver timeline "
         "without re-anchoring their timestamps; relayed events sort "
         "before their stage start and break timeline monotonicity",
         "§5"),
    Rule("DECA410", "double-grant", Severity.ERROR,
         "One task key can be granted twice on a path with no release "
         "between the grants; both holders charge the same fair-share "
         "slot and the arena double-counts the bytes", "§4/§5"),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in RULES}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule, severity, where, what, and why."""

    rule_id: str
    severity: Severity
    target: str
    subject: str
    message: str
    location: str = ""
    why: tuple[str, ...] = ()

    def sort_key(self) -> tuple[int, str, str, str, str]:
        return (self.severity.rank, self.rule_id, self.target,
                self.subject, self.message)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "target": self.target,
            "subject": self.subject,
            "message": self.message,
        }
        if self.location:
            data["location"] = self.location
        if self.why:
            data["why"] = list(self.why)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(rule_id=data["rule"],
                   severity=Severity(data["severity"]),
                   target=data["target"],
                   subject=data["subject"],
                   message=data["message"],
                   location=data.get("location", ""),
                   why=tuple(data.get("why", ())))


def make_finding(rule_id: str, target: str, subject: str, message: str,
                 *, location: str = "",
                 why: tuple[str, ...] = ()) -> Finding:
    """Build a finding with the rule's default severity."""
    rule = RULES_BY_ID[rule_id]
    return Finding(rule_id=rule_id, severity=rule.severity, target=target,
                   subject=subject, message=message, location=location,
                   why=why)


def sort_findings(findings: list[Finding]) -> tuple[Finding, ...]:
    """Deterministic order: severity, then rule id, target, subject."""
    return tuple(sorted(findings, key=Finding.sort_key))
