"""Structured lint findings and the deca-lint rule catalogue.

Every diagnostic the linter can emit has a stable rule id.  ``DECA0xx``
rules are *static*: they fire from the UDT model, method IR, call graph,
symbolized-constant facts and the optimizer's decomposition plans.
``DECA1xx`` rules are *differential*: the shadow validator compares what
the runtime actually did (record sizes, SUDT writes) against what the
static classification promised, reporting soundness violations and
imprecision.

A :class:`Finding` is deterministic and JSON-round-trippable; its ``why``
chain carries the provenance steps of the classification that led to the
verdict (see :mod:`repro.analysis.explain`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """Finding severity; the values double as SARIF levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        """Sort rank: errors first."""
        return _SEVERITY_RANK[self.value]


_SEVERITY_RANK = {"error": 0, "warning": 1, "note": 2}


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: stable id, default severity, paper anchor."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    paper: str


RULES: tuple[Rule, ...] = (
    Rule("DECA001", "mutable-field-blocks-refinement", Severity.WARNING,
         "A non-final field holding runtime-fixed types is reassigned in "
         "scope; the reassignment forces the variable-sized verdict and "
         "keeps the type in object form", "§3.1/§3.3"),
    Rule("DECA002", "phase-boundary-escape", Severity.ERROR,
         "A field vouched init-only by an earlier phase is assigned by "
         "the current phase's own code — the reference escapes the phase "
         "boundary and the assumption is unsound", "§3.4"),
    Rule("DECA003", "recursive-type-set", Severity.WARNING,
         "The UDT's type dependency graph is cyclic; a recursively-"
         "defined type can never be decomposed", "§3.1"),
    Rule("DECA004", "unproven-symbolic-length", Severity.WARNING,
         "A fixed-length array proof rests on symbolic constants with no "
         "runtime binding; the hybrid optimizer cannot inline the array "
         "and falls back to a length-prefixed layout", "§3.3/App. A"),
    Rule("DECA005", "plan-contradicts-classification", Severity.ERROR,
         "The optimizer decomposed a container although the (phased) "
         "classification says its records are not safely decomposable "
         "there", "§3.4/§4.3"),
    Rule("DECA006", "unanalyzed-container-type", Severity.NOTE,
         "A cache/shuffle container holds records the analysis never "
         "saw (no UDT declared); they stay in object form", "§5"),
    Rule("DECA007", "element-field-init-only-assumption", Severity.ERROR,
         "An array element field is assumed init-only; element fields "
         "never qualify (§3.3 rule 2), so the assumption is unsound",
         "§3.3"),
    Rule("DECA101", "shadow-soundness-violation", Severity.ERROR,
         "The runtime resized records of a container the static analysis "
         "declared fixed-size (SFST/RFST)", "§3.1"),
    Rule("DECA102", "shadow-imprecision", Severity.NOTE,
         "The static analysis kept a container in object form although "
         "every observed record had the same data-size", "§3.1"),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in RULES}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule, severity, where, what, and why."""

    rule_id: str
    severity: Severity
    target: str
    subject: str
    message: str
    location: str = ""
    why: tuple[str, ...] = ()

    def sort_key(self) -> tuple[int, str, str, str, str]:
        return (self.severity.rank, self.rule_id, self.target,
                self.subject, self.message)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "target": self.target,
            "subject": self.subject,
            "message": self.message,
        }
        if self.location:
            data["location"] = self.location
        if self.why:
            data["why"] = list(self.why)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(rule_id=data["rule"],
                   severity=Severity(data["severity"]),
                   target=data["target"],
                   subject=data["subject"],
                   message=data["message"],
                   location=data.get("location", ""),
                   why=tuple(data.get("why", ())))


def make_finding(rule_id: str, target: str, subject: str, message: str,
                 *, location: str = "",
                 why: tuple[str, ...] = ()) -> Finding:
    """Build a finding with the rule's default severity."""
    rule = RULES_BY_ID[rule_id]
    return Finding(rule_id=rule_id, severity=rule.severity, target=target,
                   subject=subject, message=message, location=location,
                   why=why)


def sort_findings(findings: list[Finding]) -> tuple[Finding, ...]:
    """Deterministic order: severity, then rule id, target, subject."""
    return tuple(sorted(findings, key=Finding.sort_key))
