"""Closure rules for deca-lint: static DECA20x plus the differential DECA21x.

The static half runs the bytecode-level closure analyzer
(:mod:`repro.analysis.closures`) over every UDF site a shadow run
registered — record functions, shuffle combiners, custom partitioners —
and turns each active hazard into a finding whose ``why`` chain names
the exact opcode and line.  Pragma-suppressed hazards
(``# deca: allow(DECA2xx)``) are dropped here, not just downgraded.

The differential half is the DECA101 idea applied to determinism: for a
bounded sample of UDF-bearing RDDs it re-executes partition 0 *twice*
against the already-materialized inputs (caches and shuffle outputs of
the shadow run) and diffs the outputs.

* A mismatch is ``DECA211`` (error): the UDF is nondeterministic at
  runtime, whatever the static verdict said.
* A match for a UDF the static pass flagged nondeterministic is
  ``DECA212`` (note): the sampled partition may simply not exercise the
  nondeterminism — static stays authoritative.

A double-run must never *contradict* a ``deterministic`` static verdict;
the acceptance tests pin that property.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..analysis.closures import ClosureReport, analyze_value
from ..spark.closure_guard import UdfSite
from ..spark.context import DecaContext
from ..spark.metrics import TaskMetrics
from ..spark.rdd import RDD, ShuffledRDD
from ..spark.scheduler import TaskContext
from .findings import Finding, make_finding

#: Upper bound on RDDs examined by the double-run check, so lint cost
#: stays linear in the app, not in the iteration count.
MAX_DIFFERENTIAL_RDDS = 16

#: How many leading records of a replay are compared.
MAX_DIFF_RECORDS = 4096


def app_sites(ctx: DecaContext) -> Iterator[UdfSite]:
    """Every UDF site registered on *ctx*, in RDD-id order."""
    for rdd_id in sorted(ctx._rdds):
        rdd = ctx._rdds[rdd_id]
        fn = getattr(rdd, "_record_fn", None)
        if fn is not None:
            kind = getattr(rdd, "_record_kind", None) or "udf"
            yield UdfSite(rdd_id, rdd.name, kind, fn)
        dep = getattr(rdd, "shuffle_dep", None)
        if dep is not None:
            if dep.merge_value is not None:
                yield UdfSite(rdd_id, rdd.name, "merge", dep.merge_value)
            if dep.partitioner is not None:
                yield UdfSite(rdd_id, rdd.name, "partitioner",
                              dep.partitioner)


def run_closure_rules(app: str, ctx: DecaContext
                      ) -> tuple[list[Finding], dict[str, int]]:
    """Static scan plus differential double-run over *ctx*'s lineage."""
    findings: list[Finding] = []
    seen: set[tuple[str, str, str]] = set()
    reports: dict[int, ClosureReport] = {}
    sites: list[UdfSite] = []
    analyzed = 0
    flagged_rdds: set[int] = set()
    for site in app_sites(ctx):
        sites.append(site)
        try:
            report = analyze_value(site.fn)
        except TypeError:
            continue
        if report is None:
            continue
        analyzed += 1
        reports[site.rdd_id] = _merge_report(reports.get(site.rdd_id),
                                             report)
        if report.determinism == "nondeterministic":
            flagged_rdds.add(site.rdd_id)
        target = f"{app}/closure:{site.rdd_name}"
        for hazard in report.active_hazards:
            message = (f"{site.kind} UDF {report.qualname}: "
                       f"{hazard.reason}")
            key = (hazard.rule_id, target, message)
            if key in seen:
                continue    # same UDF re-registered each iteration
            seen.add(key)
            findings.append(make_finding(
                hazard.rule_id, target, report.qualname, message,
                location=report.location,
                why=(hazard.why(report.location),)))

    diff = _run_differential(app, ctx, reports, findings)
    summary = {
        "udf_sites": len(sites),
        "udfs_analyzed": analyzed,
        "udfs_nondeterministic": len(flagged_rdds),
        "double_runs": diff["double_runs"],
        "double_run_mismatches": diff["mismatches"],
        "double_run_skipped": diff["skipped"],
    }
    return findings, summary


def _merge_report(existing: ClosureReport | None,
                  report: ClosureReport) -> ClosureReport:
    """Keep the 'worst' report per RDD (an RDD can host map + merge)."""
    if existing is None:
        return report
    if (existing.determinism != "nondeterministic"
            and report.determinism == "nondeterministic"):
        return report
    return existing


# -- differential double-run --------------------------------------------------
def _run_differential(app: str, ctx: DecaContext,
                      reports: dict[int, ClosureReport],
                      findings: list[Finding]) -> dict[str, int]:
    stats = {"double_runs": 0, "mismatches": 0, "skipped": 0}
    for rdd_id in sorted(reports):
        if stats["double_runs"] >= MAX_DIFFERENTIAL_RDDS:
            break
        rdd = ctx._rdds.get(rdd_id)
        if rdd is None or not _replayable(rdd):
            continue
        first = _replay(ctx, rdd)
        second = _replay(ctx, rdd)
        if first is None or second is None:
            stats["skipped"] += 1
            continue
        stats["double_runs"] += 1
        report = reports[rdd_id]
        target = f"{app}/closure:{rdd.name}"
        statically_nondet = report.determinism == "nondeterministic"
        if first != second:
            stats["mismatches"] += 1
            divergence = _first_divergence(first, second)
            findings.append(make_finding(
                "DECA211", target, report.qualname,
                f"re-executing partition 0 twice produced different "
                f"outputs ({len(first)} vs {len(second)} records, first "
                f"divergence at index {divergence})",
                location=report.location,
                why=(f"[closure.diff] double-run of {rdd.name} "
                     f"partition 0 diverged at record {divergence}",
                     f"[closure.dis] static verdict was "
                     f"{report.determinism}")))
        elif statically_nondet:
            findings.append(make_finding(
                "DECA212", target, report.qualname,
                f"statically nondeterministic UDF produced identical "
                f"outputs over {len(first)} records on a double-run; "
                f"the sampled partition may not exercise the hazard",
                location=report.location,
                why=(f"[closure.diff] double-run of {rdd.name} "
                     f"partition 0 agreed",)))
    return stats


def _first_divergence(first: list[Any], second: list[Any]) -> int:
    for index, (a, b) in enumerate(zip(first, second)):
        if a != b:
            return index
    return min(len(first), len(second))


def _replayable(rdd: RDD) -> bool:
    """Only replay UDF-bearing RDDs whose inputs are materialized."""
    if isinstance(rdd, ShuffledRDD):
        # The fetched blocks persist in the shuffle store after the run.
        return rdd.shuffle_dep.merge_value is not None
    return getattr(rdd, "_record_fn", None) is not None


def _replay(ctx: DecaContext, rdd: RDD) -> list[Any] | None:
    """Re-execute partition 0 of *rdd*, bypassing its own cache.

    ``compute`` (not ``iterator``) on the target keeps its own cached
    blocks from masking nondeterminism; parents still read through the
    cache, so both replays see identical inputs.
    """
    executor = ctx.executor_for(0, 0)
    task = TaskContext(
        executor=executor,
        metrics=TaskMetrics(task_id=0, stage_id=-1, attempt=0))
    executor.begin_task(task)
    try:
        out = []
        for record in rdd.compute(0, task):
            out.append(record)
            if len(out) >= MAX_DIFF_RECORDS:
                break
    except Exception:
        executor.abort_task(task, "lint-replay-failed")
        return None
    executor.end_task(task)
    return out
