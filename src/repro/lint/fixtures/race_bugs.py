"""Seeded concurrency bugs — WRONG ON PURPOSE.

One minimal buggy function per DECA40x rule.  Each function does two
things at once:

* **statically** it contains exactly the protocol violation its rule
  describes, so ``repro.lint.race`` fires exactly one finding on it;
* **dynamically** it annotates a live :class:`~repro.obs.vclock.
  VClockChecker` (always passed as the ``vclock`` parameter — the
  static lowerer skips ``vclock``/``ledger`` receivers, exactly like
  the borrow fixtures skip ledger instrumentation) so the runtime
  sanitizer trips the matching slug when the function is executed.

``repro.bench sanitize`` drives every function here against real
engine objects (a shm segment, a mmap tier, an arena stub) and asserts
the per-rule counters; ``tests/test_lint_race.py`` asserts the static
findings.  None of this module is imported by the engine.
"""

from __future__ import annotations

import pickle
import threading
from multiprocessing import shared_memory
from typing import Any

from ...exec.shm import sweep_segments, unlink_segment
from ...obs.vclock import VClockChecker

#: Handles parked here survive the fixture call (and are closed by
#: :func:`reset`), so segment mappings outlive their misuse on purpose.
SINK: list[Any] = []


def reset() -> None:
    """Close every parked handle so fixtures can run repeatedly."""
    for item in SINK:
        close = getattr(item, "close", None)
        if close is not None:
            try:
                close()
            except (BufferError, OSError):
                pass
    SINK.clear()


# -- DECA401 ----------------------------------------------------------------
def unlink_races_attach(vclock: VClockChecker, name: str) -> None:
    """WRONG: recycles a deterministic segment name while a concurrent
    attacher (forked before the unlink) maps it — the TOCTOU window."""
    vclock.note_create("segment", name)
    vclock.fork("attacker")
    unlink_segment(name)
    vclock.note_reclaim("segment", name)
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        seg = None
    vclock.note_attach("segment", name, actor="attacker")
    if seg is not None:
        SINK.append(seg)


# -- DECA402 ----------------------------------------------------------------
class RacyRegistry:
    """WRONG ON PURPOSE: takes a lock on one mutation path but not the
    other, so two decrements can interleave and lose a count."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._refs: dict[str, int] = {}

    def register(self, name: str) -> None:
        with self._lock:
            self._refs[name] = 1

    def release_unlocked(self, vclock: VClockChecker, name: str) -> None:
        count = self._refs.get(name, 0)
        self._refs[name] = count - 1
        vclock.note_refdec(name, locked=False)


# -- DECA403 ----------------------------------------------------------------
def demote_after_free(vclock: VClockChecker, tier: Any, entry: Any,
                      name: str) -> None:
    """WRONG: frees the backing extent first, then publishes the cold
    flag — a concurrent promote reads cold=False over recycled bytes."""
    vclock.fork("promoter")
    tier.drop(name)
    vclock.note_demote("extent", name)
    entry.cold = True
    vclock.note_promote("extent", name, actor="promoter")


# -- DECA404 ----------------------------------------------------------------
def stale_pool_write(vclock: VClockChecker, arena: Any,
                     queue: Any) -> None:
    """WRONG: samples the pool level, blocks on the result queue, then
    feeds the stale sample back into a pool transition."""
    version = vclock.pool_read("execution")
    level = arena.free_bytes
    queue.get()
    vclock.pool_write("execution")  # the concurrent evictor's write
    arena.execution_acquire(level)
    vclock.pool_write("execution", based_on=version)


# -- DECA405 ----------------------------------------------------------------
def consume_before_join(vclock: VClockChecker, outcome: Any,
                        worker: Any) -> Any:
    """WRONG: reads the result bytes before the wave barrier — the
    producing worker may still be writing them."""
    records = pickle.loads(outcome.result_blob)
    vclock.note_result_consumed("t0")
    worker.join()
    return records


# -- DECA406 ----------------------------------------------------------------
def sweep_live_worker(vclock: VClockChecker, prefix: str) -> None:
    """WRONG: sweeps an attempt's segments with no death confirmation —
    the owning worker is still live."""
    sweep_segments(prefix)
    vclock.note_sweep(prefix, owner="w-live")


# -- DECA407 ----------------------------------------------------------------
def respill_inflight_victim(vclock: VClockChecker, store: Any,
                            key: str) -> None:
    """WRONG: re-selects and swaps a victim with no in-flight guard —
    a re-entrant eviction drains the same pages twice."""
    victim = store.pick_victim()
    store.swap_out(victim)
    vclock.swap_begin(key)
    vclock.note_victim(key)
    vclock.swap_end(key)


# -- DECA408 ----------------------------------------------------------------
def write_through_attach(vclock: VClockChecker, name: str,
                         payload: bytes) -> None:
    """WRONG: writes through a view attached read-only — the write
    races every other attacher of the same physical bytes."""
    seg = shared_memory.SharedMemory(name=name)
    vclock.adopt_readonly("segment", name, seg.buf)
    seg.buf[0:len(payload)] = payload
    vclock.verify_readonly("segment", name)
    SINK.append(seg)


# -- DECA409 ----------------------------------------------------------------
def relay_unanchored(vclock: VClockChecker, tracer: Any, event: Any,
                     anchor_ms: float) -> None:
    """WRONG: forwards a worker-local timestamp onto the driver
    timeline without re-anchoring it to the stage start."""
    tracer.emit(event)
    vclock.note_relay(event.ts_ms, anchor_ms)


# -- DECA410 ----------------------------------------------------------------
def double_grant(vclock: VClockChecker, arena: Any,
                 task_id: str) -> None:
    """WRONG: grants the same task slot twice with no release — both
    holders charge the same fair-share slot."""
    arena.grant(task_id)
    vclock.note_grant(task_id)
    arena.grant(task_id)
    vclock.note_grant(task_id)
