"""Eight seeded zero-copy lifetime bugs, one per DECA30x rule.

Every function here is WRONG ON PURPOSE.  Each exhibits exactly one
borrow violation: the static checker (:mod:`repro.lint.borrow`) must
report precisely that rule against it, and when driven against a live
``PageStoreTier`` / ``ShmSegmentRegistry`` / ``ProvenanceLedger`` by
``python -m repro.bench sanitize``, the runtime sanitizer must record
the matching violation slug.

The harness (``repro.bench.__main__._run_sanitize``) owns all setup —
pre-populating extents, creating segments, wiring ledgers — so each
fixture body is the minimal buggy interaction.
"""

from __future__ import annotations

from typing import Any

from ...exec.shm import SharedPageSegment

#: Module-level escape sink: a handle appended here observably outlives
#: the function (and keeps the buffer referenced at runtime).
SINK: list[Any] = []


def reset() -> None:
    """Drop every escaped handle between harness runs."""
    for item in SINK:
        if isinstance(item, memoryview):
            try:
                item.release()
            except BufferError:
                pass
    SINK.clear()


def bug_use_after_free_extent(tier: Any) -> memoryview:
    """DECA301: the extent dies while an exported view is still borrowed.

    The harness swap_outs a page group under the name ``fx-uaf`` first;
    dropping it recycles the mmap bytes under the returned reader.
    """
    views = tier.views("fx-uaf")
    first = views[0]
    tier.drop("fx-uaf")
    return first


def bug_use_after_unlink_segment(registry: Any, ledger: Any,
                                 name: str) -> memoryview:
    """DECA302: the segment is released/unlinked under a live view.

    The harness created the segment and registered it with refcount 1,
    so this release drops it to zero and unlinks the backing file while
    the exported view is still attached.
    """
    segment = SharedPageSegment(name, 4096)
    view = segment.view(64)
    ledger.borrow("segment", name, view=view, nbytes=64, transient=False)
    registry.release(name)
    SINK.append(segment)   # keep the mapping alive under the view
    return view


def bug_double_free(tier: Any) -> None:
    """DECA303: the same extent is freed twice on one path."""
    tier.drop("fx-df")
    tier.drop("fx-df")


def bug_view_escapes_adoption(tier: Any, group: Any, ledger: Any) -> None:
    """DECA304: a second handle outlives the page group's adoption.

    After ``adopt_page`` the group owns the view's lifetime; the slice
    stashed in ``SINK`` keeps the underlying extent buffer exported
    behind the refcount protocol's back — reclaim releases the adopted
    parents, but the escaped slice still aliases the recycled bytes.
    """
    views = tier.swap_in("fx-esc")
    for view in views:
        group.adopt_page(view)
    keep = views[0][:4]
    ledger.borrow("extent", "fx-esc", view=keep, transient=False)
    SINK.append(keep)
    ledger.retain("extent", "fx-esc", group=group.name)
    group.reclaim()


def bug_remap_invalidates_export(tier: Any, ledger: Any,
                                 scratch: Any) -> list[memoryview]:
    """DECA305: a grow path resizes the mapping under exported views.

    The retire-on-BufferError protocol (``tier._retired``) is skipped:
    the mapping is replaced in place, so every exported view dangles.
    """
    views = tier.views("fx-remap")
    scratch.resize(8192)
    ledger.note_remap("extent", ["fx-remap"], retired=False)
    return views


def bug_leak_at_finish(tier: Any, stop_early: bool) -> Any:
    """DECA306: a teardown path returns before its sibling's cleanup.

    With ``stop_early`` the exported views are never released and the
    extent never dropped — the borrows leak past the lifetime boundary
    that the fall-through path respects.
    """
    views = tier.views("fx-leak")
    if stop_early:
        return views
    del views
    tier.drop("fx-leak")
    return None


class BadCacheEntry:
    """DECA307: reads its payload without consulting the cold flag."""

    def __init__(self, blob: Any) -> None:
        self.blob = blob
        self.cold = False

    def read(self) -> Any:
        return self.blob[:8]


def bug_cross_process_cold_alias(entry: Any, ledger: Any,
                                 name: str) -> Any:
    """Drives :class:`BadCacheEntry` past a demotion.

    The entry was demoted (its authoritative bytes now live in the mmap
    tier) but ``read`` never checks ``self.cold``, so the stale shared
    bytes are served; ``check_use`` records the cold-alias violation.
    """
    ledger.note_demote("segment", name)
    ledger.check_use("segment", name)
    return entry.read()


def bug_unreleased_drain_copy(group: Any, ledger: Any) -> list[bytes]:
    """DECA308: the drain's transient copies are never shrunk or freed.

    ``drain()`` charges a double-buffer copy per page; nothing here ever
    calls ``shrink()``/``free_group()`` (or ``release_drain``), so the
    footprint outlives the swap it paid for.
    """
    chunks: list[bytes] = []
    for chunk in group.drain():
        chunks.append(chunk)
    return chunks
