"""Seeded-bug fixtures proving every borrow rule live.

Each function in :mod:`repro.lint.fixtures.borrow_bugs` contains exactly
one deliberate zero-copy lifetime bug.  The static test asserts the
borrow checker flags each with exactly its rule (DECA301–DECA308), and
``python -m repro.bench sanitize`` runs each against a real tier /
registry / ledger to prove the runtime sanitizer trips on the same bug.

These modules are *never* imported by the engine — they exist only as
checker and sanitizer targets.
"""
