"""The concurrency lint: a static happens-before race detector
(``DECA401``–``DECA410``).

The fourth pillar of the deca-lint suite (plan → closure → borrow →
**concurrency**), and the static half of the vector-clock sanitizer
(:mod:`repro.obs.vclock` is the dynamic half).  It parses the engine's
concurrency surface — the mp backend, the shared-memory protocol, the
worker runtime, the scheduler/shuffle wave machinery and the arena/tier
accounting planes — with :mod:`ast`, lowers every function into the same
mini-IR op stream the borrow checker uses (reusing its bounded path
enumeration, :func:`repro.lint.borrow._enumerate_paths`), and runs a
*protocol model* over each path:

* **acquire/release edges** — registry ``acquire``/``release`` refcount
  transitions, ``with self._lock`` scopes, arena pool reads and writes;
* **wave barriers** — result-queue ``get``, worker ``join``, the
  ``_gather`` rendezvous;
* **segment lifecycle** — create/attach/close/unlink, with created
  handles writable and attached handles read-only;
* **extent lifecycle** — alloc/free/remap on the mmap tier;
* **death/sweep evidence** — ``is_alive``/``exitcode``/``terminate``
  checks dominating an orphan-segment sweep.

Each DECA40x rule is a path predicate over that op stream: e.g. an
``UNLINK`` followed by an ``ATTACH`` of the same segment name with no
refcount acquire between them is the classic TOCTOU on deterministic
names (DECA401); a pool read that crosses a blocking wait before
feeding a pool write is a lost update (DECA404).  Matching is textual
on the resource expression, exactly as in the borrow checker: precise
within one (inlined) function scope, no cross-resource aliasing.

Everything is deterministic: fixed module order, source-order ``ast``
walks, and :data:`repro.lint.borrow.PATH_LIMIT`-bounded enumeration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from ..analysis.pointsto import (
    ContainerKind,
    ContainerRef,
    CreationSite,
    PointsToBinding,
    assign_ownership,
)
from ..analysis.ir import Call, Method
from ..analysis.udt import ClassType
from .borrow import (
    FuncModel,
    PathOp,
    _collect_functions,
    _enumerate_paths,
    _Lowerer,
    _op,
    _text,
)
from .findings import Finding, make_finding, sort_findings

#: The engine's concurrency surface, relative to the ``repro`` package
#: root.  Unlike the borrow checker this list *includes*
#: ``exec/worker.py``: workers run concurrently with the driver by
#: construction, which is exactly what the protocol model audits.
RACE_MODULES: tuple[tuple[str, str], ...] = (
    ("repro.exec.mp", "exec/mp.py"),
    ("repro.exec.shm", "exec/shm.py"),
    ("repro.exec.worker", "exec/worker.py"),
    ("repro.spark.scheduler", "spark/scheduler.py"),
    ("repro.spark.shuffle", "spark/shuffle.py"),
    ("repro.spark.cache", "spark/cache.py"),
    ("repro.memory.unified", "memory/unified.py"),
    ("repro.memory.tier", "memory/tier.py"),
    ("repro.memory.page", "memory/page.py"),
)

# -- op vocabulary -----------------------------------------------------------
CREATE = "CREATE"              # segment created (writable handle)
ATTACH = "ATTACH"              # segment attached by name (read-only)
UNLINK = "UNLINK"              # segment unlinked
REFINC = "REFINC"              # registry refcount acquire
REFDEC = "REFDEC"              # registry refcount release
REFMUT_LOCKED = "REFMUT_LOCKED"      # direct refcount mutation, in lock
REFMUT_UNLOCKED = "REFMUT_UNLOCKED"  # direct refcount mutation, no lock
COLD_SET = "COLD_SET"          # ``entry.cold = ...`` publication
FREE = "FREE"                  # extent drop / backing free
POOL_READ = "POOL_READ"        # arena pool level read
POOL_WRITE = "POOL_WRITE"      # arena pool transition
WAIT = "WAIT"                  # blocking wait (queue get / join / sleep)
CONSUME = "CONSUME"            # task result bytes consumed
SWEEP = "SWEEP"                # orphan-segment sweep by prefix
DEATH = "DEATH"                # worker-death evidence (terminate/kill)
SELECT = "SELECT"              # spill victim selection
SWAP = "SWAP"                  # spill/swap of a selected victim
WRITE_RO = "WRITE_RO"          # write through an attach-derived view
RELAY_RAW = "RELAY_RAW"        # tracer relay of a pre-built event
RELAY_ANCHORED = "RELAY_ANCHORED"    # relay re-anchored via replace(ts_ms=)
GRANT = "GRANT"                # task slot granted
GRANT_REL = "GRANT_REL"        # task slot released
GUARD = "GUARD"                # branch condition text (from the lowerer)

#: Guard-text fragments that count as worker-death evidence for DECA406.
_DEATH_WORDS = ("is_alive", "exitcode", "lost", "dead", "crash")

#: Guard-text fragments that count as an in-flight guard for DECA407.
_INFLIGHT_WORDS = ("inflight", "in_flight")

#: Receiver fragments marking an arena-ish pool owner.
_POOL_ATTRS = ("free_bytes", "execution_used", "storage_used",
               "shuffle_used")
_POOL_WRITERS = frozenset({
    "execution_acquire", "execution_release", "storage_acquire",
    "storage_grow", "storage_discard", "shuffle_acquire",
    "shuffle_release", "pool_write",
})


@dataclass
class RaceModel:
    """One lowered function plus the concurrency facts the rules need."""

    func: FuncModel
    class_uses_lock: bool = False


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` under a Subscript/Attribute chain, if any."""
    base: ast.expr = node
    while isinstance(base, (ast.Subscript, ast.Attribute)):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id
    return None


def _has_create_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


class _RaceLowerer(_Lowerer):
    """Lowers one function into the concurrency-protocol op stream.

    Reuses the borrow lowerer's statement walking (branches, loops,
    try/with, alias propagation) and replaces the op vocabulary: calls
    and assignments are recognized against the shared-memory protocol
    instead of the borrow lifecycle.
    """

    def __init__(self, model: FuncModel,
                 module_methods: dict[str, Method]) -> None:
        super().__init__(model, module_methods)
        # Handles bound by a CREATE (writable) vs an ATTACH (read-only).
        self.writable: set[str] = set()
        self.ro_handles: set[str] = set()
        self._lock_depth = 0

    # -- segment handle classification --------------------------------------
    def _bind_segment(self, target: ast.expr | None, resource: str,
                      writable: bool) -> None:
        self._bind(target, resource)
        if isinstance(target, ast.Name):
            self.seg_handles[target.id] = resource
            (self.writable if writable else self.ro_handles).add(target.id)

    def _propagate_writability(self, target: ast.expr | None,
                               source: str) -> None:
        if not isinstance(target, ast.Name):
            return
        if source in self.writable:
            self.writable.add(target.id)
        elif source in self.ro_handles:
            self.ro_handles.add(target.id)

    # -- call recognition ---------------------------------------------------
    def _call_ops(self, call: ast.Call,
                  target: ast.expr | None = None) -> list[object]:
        func = call.func
        line = call.lineno
        nargs = len(call.args)
        out: list[object] = []
        if isinstance(func, ast.Name):
            name = func.id
            if name == "unlink_segment" and nargs >= 1:
                out.append(_op(UNLINK, f"segment:{self._token(call)}",
                               line))
            elif name in ("SharedPageSegment", "SharedMemory"):
                resource = f"segment:{self._token(call)}"
                if _has_create_true(call):
                    out.append(_op(CREATE, resource, line))
                    self._bind_segment(target, resource, writable=True)
                else:
                    out.append(_op(ATTACH, resource, line))
                    self._bind_segment(target, resource, writable=False)
            elif name == "pack_records_segment" and nargs >= 1:
                out.append(_op(CREATE, f"segment:{self._token(call)}",
                               line))
                self._bind_segment(target,
                                   f"segment:{self._token(call)}",
                                   writable=True)
            elif name == "attach_page_group" and nargs >= 1:
                resource = f"segment:{self._token(call)}"
                out.append(_op(ATTACH, resource, line))
                self._bind_segment(target, resource, writable=False)
            elif name == "sweep_segments":
                out.append(_op(SWEEP, self._token(call), line))
            elif name in self.module_methods:
                return super()._call_ops(call, target)
            return out
        if not isinstance(func, ast.Attribute):
            return out
        recv = _text(func.value)
        meth = func.attr
        if "ledger" in recv or "vclock" in recv:
            # Sanitizer instrumentation is not a protocol op.
            return out
        if meth in ("SharedPageSegment", "SharedMemory"):
            resource = f"segment:{self._token(call)}"
            if _has_create_true(call):
                out.append(_op(CREATE, resource, line))
                self._bind_segment(target, resource, writable=True)
            else:
                out.append(_op(ATTACH, resource, line))
                self._bind_segment(target, resource, writable=False)
        elif meth == "unlink" and nargs == 0:
            resource = f"segment:{recv}"
            if isinstance(func.value, ast.Name):
                resource = self.seg_handles.get(func.value.id, resource)
            out.append(_op(UNLINK, resource, line))
        elif meth == "acquire" and nargs >= 1:
            out.append(_op(REFINC, f"segment:{self._token(call)}", line))
        elif meth == "release" and nargs >= 1:
            out.append(_op(REFDEC, f"segment:{self._token(call)}", line))
        elif meth == "drop" and nargs >= 1:
            out.append(_op(FREE, f"extent:{self._token(call)}", line))
        elif meth in ("view", "allocate") \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self.seg_handles:
            self._bind(target, self.seg_handles[func.value.id])
            self._propagate_writability(target, func.value.id)
        elif meth == "sweep_segments":
            out.append(_op(SWEEP, self._token(call), line))
        elif meth in ("terminate", "kill"):
            out.append(_op(DEATH, recv, line))
        elif meth == "is_alive" and nargs == 0:
            out.append(_op(DEATH, recv, line))
        elif meth == "get" and "queue" in recv.lower():
            out.append(_op(WAIT, recv, line))
        elif meth in ("join", "sleep", "wait") \
                and not isinstance(func.value, ast.Constant) \
                and '"' not in recv and "'" not in recv:
            out.append(_op(WAIT, recv, line))
        elif meth == "loads" and nargs >= 1:
            arg_text = _text(call.args[0])
            if "result_blob" in arg_text or "blob" in arg_text:
                out.append(_op(CONSUME, arg_text, line))
        elif "victim" in meth:
            resource = _text(target) if target is not None else meth
            out.append(_op(SELECT, resource, line))
            self._bind(target, f"victim:{resource}")
        elif meth in ("swap_out", "spill") and nargs >= 1:
            out.append(_op(SWAP, _text(call.args[0]), line))
            # A self-call swap still inlines: the in-flight guard lives
            # inside the callee and must stay visible on the path.
            if isinstance(func.value, ast.Name) and func.value.id == "self" \
                    and meth in self.module_methods:
                out.append(Call(target=None,
                                method=self.module_methods[meth]))
        elif meth == "pack_into" and nargs >= 1:
            base = _base_name(call.args[0])
            if base is not None and base in self.ro_handles \
                    and base not in self.writable:
                out.append(_op(WRITE_RO,
                               self.seg_handles.get(base, f"view:{base}"),
                               line))
        elif meth == "emit" and "tracer" in recv and nargs == 1:
            arg = call.args[0]
            if isinstance(arg, ast.Name):
                out.append(_op(RELAY_RAW, arg.id, line))
            elif isinstance(arg, ast.Call):
                inner = arg.func
                anchored = (isinstance(inner, ast.Attribute)
                            and inner.attr == "replace"
                            and any(kw.arg == "ts_ms"
                                    for kw in arg.keywords))
                if anchored:
                    out.append(_op(RELAY_ANCHORED, _text(arg), line))
        elif meth in ("task_started", "grant"):
            token = (self._token(call) if nargs or call.keywords
                     else (_text(target) if target is not None else "task"))
            out.append(_op(GRANT, f"task:{token}", line))
        elif meth in ("task_finished", "release_grant") and nargs >= 1:
            out.append(_op(GRANT_REL, f"task:{self._token(call)}", line))
        elif meth in _POOL_WRITERS:
            out.append(_op(POOL_WRITE, "pool", line))
        elif isinstance(func.value, ast.Name) and func.value.id == "self" \
                and meth in self.module_methods:
            return super()._call_ops(call, target)
        return out

    # -- statement lowering additions ---------------------------------------
    def _pool_reads(self, node: ast.AST) -> list[object]:
        out: list[object] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in _POOL_ATTRS:
                out.append(_op(POOL_READ, "pool", sub.lineno))
                break
        return out

    def _lower_stmt(self, stmt: ast.stmt) -> list[object]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locking = any("lock" in _text(item.context_expr).lower()
                          for item in stmt.items)
            ops: list[object] = []
            for item in stmt.items:
                ops.extend(self._calls_in(item.context_expr))
            if locking:
                self._lock_depth += 1
            body = list(self.lower(stmt.body))
            if locking:
                self._lock_depth -= 1
            return ops + body
        return super()._lower_stmt(stmt)  # type: ignore[return-value]

    def _lower_assign(self, stmt: ast.stmt) -> list[object]:
        ops: list[object] = list(
            super()._lower_assign(stmt))  # type: ignore[arg-type]
        value = getattr(stmt, "value", None)
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [getattr(stmt, "target", None)])
        for target in targets:
            if target is None:
                continue
            if isinstance(target, ast.Attribute) and target.attr == "cold":
                ops.append(_op(COLD_SET, _text(target.value),
                               stmt.lineno))
            if isinstance(target, ast.Subscript):
                text = _text(target)
                # Only element stores count: ``self._refs = {}`` in a
                # constructor is initialization, not a refcount mutation.
                if "_refs" in text:
                    kind = (REFMUT_LOCKED if self._lock_depth > 0
                            else REFMUT_UNLOCKED)
                    ops.append(_op(kind, text, stmt.lineno))
                base = _base_name(target)
                if base is not None \
                        and base in self.ro_handles \
                        and base not in self.writable:
                    ops.append(_op(
                        WRITE_RO,
                        self.seg_handles.get(base, f"view:{base}"),
                        stmt.lineno))
        if value is not None:
            ops.extend(self._pool_reads(value))
        return ops


# -- module lowering ---------------------------------------------------------

def lower_race_module(source: str, module: str,
                      relpath: str) -> list[RaceModel]:
    """Parse and lower one module into per-function protocol models."""
    tree = ast.parse(source)
    models = _collect_functions(tree, module, relpath)
    lock_classes: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and "self._lock" in _text(node):
            lock_classes.add(node.name)
    by_name = {model.name: model.method for model in models}
    node_of: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node_of.setdefault(node.name, node)
    out: list[RaceModel] = []
    for model in models:
        fn = node_of.get(model.name)
        if fn is None:  # pragma: no cover - models come from node walk
            continue
        lowerer = _RaceLowerer(model, by_name)
        model.method.body = lowerer.lower(fn.body)
        out.append(RaceModel(func=model,
                             class_uses_lock=(model.cls in lock_classes)))
    return out


# -- rule predicates ---------------------------------------------------------

def _loc(model: FuncModel, line: int) -> str:
    return f"src/repro/{model.relpath}:{line}"


def _subject(model: FuncModel) -> str:
    return f"{model.module}.{model.qualname}"


def _hb_why(resource: str) -> str:
    """DECA401's provenance step: who owns the mapping while the name
    is being recycled, phrased via the §4.3 ownership rules."""
    site = CreationSite(name=resource, udt=ClassType("SharedMemory"),
                        stage_id=0)
    binding = PointsToBinding(site)
    binding.bind(ContainerRef(ContainerKind.SHUFFLE_BUFFER, resource, 0, 0))
    binding.bind(ContainerRef(ContainerKind.UDF_VARIABLES,
                              "concurrent-attacher", 0, 1))
    ownership = assign_ownership(binding)
    return (f"ownership: primary holder is {ownership.primary.name!r} "
            f"(kind {ownership.primary.kind.value}); the concurrent "
            "attacher maps the recycled name with no happens-before "
            "edge to the unlink")


def _guard_matches(op: PathOp, words: tuple[str, ...]) -> bool:
    return op.kind == GUARD and any(w in op.resource for w in words)


def check_race_function(race: RaceModel, target: str) -> list[Finding]:
    """Run every DECA40x predicate over one function's paths."""
    model = race.func
    findings: list[Finding] = []
    seen: set[tuple[str, str]] = set()

    def emit(rule: str, message: str, line: int, dedup: str,
             why: tuple[str, ...]) -> None:
        key = (rule, dedup)
        if key in seen:
            return
        seen.add(key)
        findings.append(make_finding(
            rule, target, _subject(model), message,
            location=_loc(model, line), why=why))

    paths = _enumerate_paths(model.method.body)
    all_ops = [op for ops, _term in paths for op in ops]

    # DECA402: function-level — an unlocked refcount mutation inside a
    # class that takes the registry lock elsewhere.
    if race.class_uses_lock:
        for op in all_ops:
            if op.kind == REFMUT_UNLOCKED and op.depth == 0:
                emit("DECA402",
                     f"{model.qualname} mutates the refcount table "
                     f"({op.resource}) at line {op.line} outside the "
                     "registry lock; a concurrent mutator can interleave "
                     "the read-modify-write",
                     op.line, f"{model.qualname}:{op.line}", (
                         f"mutation: {op.resource} written at line "
                         f"{op.line} with no enclosing `with self._lock`",
                         "the owning class takes self._lock on its other "
                         "mutation paths",
                         "lost count: two unlocked decrements can both "
                         "read the same value and drop one reference"))
                break

    # DECA409: function-level — any relay of a pre-built worker event
    # without re-anchoring its timestamp onto the driver timeline.
    for op in all_ops:
        if op.kind == RELAY_RAW and op.depth == 0:
            emit("DECA409",
                 f"{model.qualname} relays worker event {op.resource!r} "
                 f"at line {op.line} without re-anchoring ts_ms; the "
                 "relayed event sorts before its stage start",
                 op.line, model.qualname, (
                     f"relay: tracer.emit({op.resource}) at line "
                     f"{op.line} forwards the worker-local timestamp",
                     "protocol: relays must rebase via "
                     "dataclasses.replace(event, ts_ms=stage_start + "
                     "event.ts_ms)"))
            break

    for ops, _terminated in paths:
        # DECA401: unlink followed by a same-name attach, no refcount
        # acquire between them (TOCTOU on the deterministic name).
        unlinked: dict[str, int] = {}
        for op in ops:
            if op.kind == UNLINK:
                unlinked[op.resource] = op.line
            elif op.kind == REFINC:
                unlinked.pop(op.resource, None)
            elif op.kind in (CREATE, ATTACH):
                unlink_line = unlinked.get(op.resource)
                if op.kind == ATTACH and unlink_line is not None:
                    emit("DECA401",
                         f"{op.resource!r} is attached at line {op.line} "
                         f"after its unlink at line {unlink_line} with "
                         "no refcount acquire between; a concurrent "
                         "attacher races the name recycling",
                         op.line, f"{model.qualname}:{op.resource}", (
                             f"unlink: {op.resource} discarded at line "
                             f"{unlink_line}",
                             "no registry.acquire() re-establishes the "
                             "reference on this path",
                             f"attach: the deterministic name is re-"
                             f"mapped at line {op.line}",
                             _hb_why(op.resource)))
                unlinked.pop(op.resource, None)

        # DECA403: the cold flag is published after the backing bytes
        # already died on this path.
        freed_line: int | None = None
        for op in ops:
            if op.kind in (FREE, UNLINK, REFDEC):
                freed_line = op.line
            elif op.kind == COLD_SET and freed_line is not None \
                    and op.depth == 0:
                emit("DECA403",
                     f"{model.qualname} sets {op.resource}.cold at line "
                     f"{op.line} after the backing bytes were released "
                     f"at line {freed_line}; a concurrent promote reads "
                     "the flag against recycled bytes",
                     op.line, f"{model.qualname}:{op.resource}", (
                         f"free: backing released at line {freed_line}",
                         f"publish: cold flag flipped at line {op.line}",
                         "a promote between the two observes cold=False "
                         "over bytes that are already gone"))
                break

        # DECA404: pool read → blocking wait → pool write (lost update).
        read_line: int | None = None
        waited: int | None = None
        for op in ops:
            if op.kind == POOL_READ:
                read_line = op.line
                waited = None
            elif op.kind == WAIT and read_line is not None:
                waited = op.line
            elif op.kind == POOL_WRITE and waited is not None:
                emit("DECA404",
                     f"{model.qualname} reads the pool level at line "
                     f"{read_line}, blocks at line {waited}, then writes "
                     f"the pool at line {op.line}; concurrent "
                     "borrow/evict between read and write is lost",
                     op.line, model.qualname, (
                         f"read: pool level sampled at line {read_line}",
                         f"wait: the path blocks at line {waited}",
                         f"write: stale level feeds the pool transition "
                         f"at line {op.line}"))
                break

        # DECA405: a task result consumed before any wave barrier.
        has_barrier = any(op.kind == WAIT for op in ops)
        if has_barrier:
            for op in ops:
                if op.kind == WAIT:
                    break
                if op.kind == CONSUME:
                    emit("DECA405",
                         f"{model.qualname} consumes {op.resource!r} at "
                         f"line {op.line} before the wave barrier; the "
                         "producing worker may still be writing the "
                         "bytes",
                         op.line, model.qualname, (
                             f"consume: result bytes read at line "
                             f"{op.line}",
                             "no queue get / worker join precedes the "
                             "read on this path",
                             "the wave barrier is the only "
                             "happens-before edge to the producer"))
                    break

        # DECA406: an orphan sweep with no death evidence before it.
        dead = False
        for op in ops:
            if op.kind == DEATH or _guard_matches(op, _DEATH_WORDS):
                dead = True
            elif op.kind == SWEEP and not dead:
                emit("DECA406",
                     f"{model.qualname} sweeps segments "
                     f"(prefix {op.resource}) at line {op.line} with no "
                     "worker-death confirmation on this path; a live "
                     "worker's in-flight segments are unlinked under it",
                     op.line, f"{model.qualname}:{op.line}", (
                         f"sweep: prefix unlink at line {op.line}",
                         "no is_alive/exitcode/terminate evidence "
                         "precedes it on this path"))
                break

        # DECA407: a victim selected and swapped with no in-flight
        # guard anywhere on the path.
        selected: dict[str, int] = {}
        inflight_guarded = any(
            _guard_matches(op, _INFLIGHT_WORDS) for op in ops)
        for op in ops:
            if op.kind == SELECT:
                selected[op.resource] = op.line
            elif op.kind == SWAP and not inflight_guarded:
                sel_line = selected.get(op.resource)
                if sel_line is not None:
                    emit("DECA407",
                         f"{model.qualname} swaps victim "
                         f"{op.resource!r} (selected at line {sel_line}) "
                         f"at line {op.line} with no in-flight guard; a "
                         "re-entrant eviction can re-select the block "
                         "mid-swap",
                         op.line, f"{model.qualname}:{op.resource}", (
                             f"select: victim chosen at line {sel_line}",
                             "no _inflight membership check on this "
                             "path",
                             f"swap: pages drained at line {op.line}; a "
                             "pressure re-entry drains them again"))
                    break

        # DECA408: a write through an attach-derived (read-only) view.
        for op in ops:
            if op.kind == WRITE_RO and op.depth == 0:
                emit("DECA408",
                     f"{model.qualname} writes through read-only view of "
                     f"{op.resource!r} at line {op.line}; the write "
                     "races every other attacher of the same bytes",
                     op.line, f"{model.qualname}:{op.resource}", (
                         f"attach: {op.resource} mapped without "
                         "create=True (consumer side)",
                         f"write: bytes stored through the view at line "
                         f"{op.line}",
                         "the shm protocol makes attached segments "
                         "read-only; only the creator writes"))
                break

        # DECA410: the same task token granted twice with no release.
        active: dict[str, int] = {}
        for op in ops:
            if op.kind == GRANT:
                prev = active.get(op.resource)
                if prev is not None:
                    emit("DECA410",
                         f"{model.qualname} grants {op.resource!r} twice "
                         f"(lines {prev} and {op.line}) with no release "
                         "between; both holders charge the same "
                         "fair-share slot",
                         op.line, f"{model.qualname}:{op.resource}", (
                             f"grant: slot taken at line {prev}",
                             "no task_finished/release on this path",
                             f"grant: the same token is granted again "
                             f"at line {op.line}"))
                    break
                active[op.resource] = op.line
            elif op.kind == GRANT_REL:
                active.pop(op.resource, None)

    return findings


# -- entry points ------------------------------------------------------------

def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def analyze_race_source(source: str, module: str, relpath: str,
                        target: str = "race") -> list[Finding]:
    """Race-check one module's source text."""
    models = lower_race_module(source, module, relpath)
    findings: list[Finding] = []
    for race in models:
        findings.extend(check_race_function(race, target))
    return findings


def run_race_rules(modules: tuple[tuple[str, str], ...] = RACE_MODULES,
                   target: str = "race",
                   ) -> tuple[tuple[Finding, ...], dict[str, object]]:
    """Race-check *modules*; returns (findings, summary)."""
    root = _package_root()
    findings: list[Finding] = []
    functions = 0
    for module, relpath in modules:
        source = (root / relpath).read_text()
        models = lower_race_module(source, module, relpath)
        functions += len(models)
        for race in models:
            findings.extend(check_race_function(race, target))
    summary: dict[str, object] = {
        "shadow": False,
        "modules": len(modules),
        "functions": functions,
        "race_findings": len(findings),
    }
    return sort_findings(list(findings)), summary
