"""Simulated managed runtime (the "JVM" substrate).

The paper's mechanism is that tracing-GC cost grows with the number of live
objects in the heap, so millions of long-living cached objects saturate the
collector (§2.1).  CPython has no tracing collector, so this package provides
a discrete-event equivalent: a generational :class:`~repro.jvm.heap.SimHeap`
whose minor/full collections charge simulated time proportional to the live
object population, with pluggable collector cost models (Parallel Scavenge,
CMS, G1 — :mod:`repro.jvm.collectors`).

Allocation is expressed in *allocation groups*
(:class:`~repro.jvm.objects.AllocationGroup`): cohorts of objects that share
a lifetime, which is exactly the granularity Deca reasons at.
"""

from .sizing import (
    ALIGNMENT,
    ARRAY_HEADER_BYTES,
    OBJECT_HEADER_BYTES,
    REFERENCE_BYTES,
    align,
    array_bytes,
    object_bytes,
    primitive_bytes,
)
from .objects import AllocationGroup, Lifetime
from .collectors import CollectorModel
from .heap import SimHeap
from .stats import GcEvent, GcKind, GcStats

__all__ = [
    "ALIGNMENT",
    "ARRAY_HEADER_BYTES",
    "OBJECT_HEADER_BYTES",
    "REFERENCE_BYTES",
    "align",
    "array_bytes",
    "object_bytes",
    "primitive_bytes",
    "AllocationGroup",
    "Lifetime",
    "CollectorModel",
    "SimHeap",
    "GcEvent",
    "GcKind",
    "GcStats",
]
