"""Allocation groups: cohorts of simulated objects sharing one lifetime.

The paper's whole premise is that data-processing objects die in cohorts —
a cached RDD block, a shuffle buffer, the temporaries of one UDF call — so
the simulated heap tracks *groups* rather than individual objects.  A group
records how many objects it holds, their total byte footprint, and which
generation those bytes currently sit in.

Two lifetimes exist:

* :attr:`Lifetime.TEMPORARY` — objects referenced only by UDF local
  variables; they are garbage by the next minor collection (§4.2 "UDF
  variables").
* :attr:`Lifetime.PINNED` — objects reachable from a long-living container
  (cache block, shuffle buffer, Deca page group); they survive collections
  and get promoted until :meth:`AllocationGroup.free` is called when their
  container's lifetime ends.
"""

from __future__ import annotations

import enum
import itertools

from ..errors import AllocationError


class Lifetime(enum.Enum):
    """Expected lifetime class of an allocation group."""

    TEMPORARY = "temporary"
    PINNED = "pinned"


_group_ids = itertools.count(1)


class AllocationGroup:
    """A cohort of objects with a shared lifetime inside one heap.

    The group does not store payloads; it is pure accounting.  Counters are
    split by generation so collections can trace/promote the right subset:

    ``young_objects`` / ``young_bytes``
        allocated since the last minor collection (or survivors still aging);
    ``old_objects`` / ``old_bytes``
        promoted tenured objects.
    """

    __slots__ = (
        "group_id",
        "name",
        "lifetime",
        "young_objects",
        "young_bytes",
        "old_objects",
        "old_bytes",
        "age",
        "freed",
    )

    def __init__(self, name: str, lifetime: Lifetime) -> None:
        self.group_id: int = next(_group_ids)
        self.name = name
        self.lifetime = lifetime
        self.young_objects = 0
        self.young_bytes = 0
        self.old_objects = 0
        self.old_bytes = 0
        # Number of minor collections the current young residents survived.
        self.age = 0
        self.freed = False

    # -- accounting ---------------------------------------------------------
    @property
    def live_objects(self) -> int:
        """Objects still reachable through this group."""
        if self.freed:
            return 0
        return self.young_objects + self.old_objects

    @property
    def live_bytes(self) -> int:
        """Bytes still reachable through this group."""
        if self.freed:
            return 0
        return self.young_bytes + self.old_bytes

    def record_allocation(self, objects: int, nbytes: int, *,
                          into_old: bool = False) -> None:
        """Account *objects* totalling *nbytes* allocated into this group."""
        if self.freed:
            raise AllocationError(f"allocation into freed group {self.name!r}")
        if objects < 0 or nbytes < 0:
            raise AllocationError("allocation sizes cannot be negative")
        if into_old:
            self.old_objects += objects
            self.old_bytes += nbytes
        else:
            self.young_objects += objects
            self.young_bytes += nbytes

    def promote_young(self) -> tuple[int, int]:
        """Move all young residents to the old generation.

        Returns ``(objects, bytes)`` promoted.
        """
        objects, nbytes = self.young_objects, self.young_bytes
        self.old_objects += objects
        self.old_bytes += nbytes
        self.young_objects = 0
        self.young_bytes = 0
        self.age = 0
        return objects, nbytes

    def clear_young(self) -> tuple[int, int]:
        """Drop all young residents (they died). Returns what was dropped."""
        objects, nbytes = self.young_objects, self.young_bytes
        self.young_objects = 0
        self.young_bytes = 0
        self.age = 0
        return objects, nbytes

    def shrink(self, nbytes: int) -> None:
        """Give back *nbytes* without killing objects (a realloc).

        Used when a byte array is trimmed to its used size (Deca trims the
        last page of a sealed block).  Old-generation bytes are preferred;
        the remainder comes out of the young residents.
        """
        if self.freed:
            raise AllocationError(f"shrink of freed group {self.name!r}")
        if nbytes < 0 or nbytes > self.young_bytes + self.old_bytes:
            raise AllocationError(
                f"cannot shrink {self.name!r} by {nbytes} B "
                f"(holds {self.young_bytes + self.old_bytes} B)")
        from_old = min(nbytes, self.old_bytes)
        self.old_bytes -= from_old
        self.young_bytes -= nbytes - from_old

    def free(self) -> tuple[int, int]:
        """Mark every object in the group dead.

        Called when the owning container's lifetime ends.  Returns the
        ``(objects, bytes)`` that just became garbage; the heap reclaims the
        space at its next collection of the relevant generation.
        """
        if self.freed:
            raise AllocationError(f"group {self.name!r} freed twice")
        self.freed = True
        dead_objects = self.young_objects + self.old_objects
        dead_bytes = self.young_bytes + self.old_bytes
        self.young_objects = self.young_bytes = 0
        self.old_objects = self.old_bytes = 0
        return dead_objects, dead_bytes

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return (
            f"AllocationGroup({self.name!r}, {self.lifetime.value}, {state}, "
            f"young={self.young_objects}obj/{self.young_bytes}B, "
            f"old={self.old_objects}obj/{self.old_bytes}B)"
        )
