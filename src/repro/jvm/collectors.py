"""Collector cost models (Parallel Scavenge, CMS, G1).

The cost of a collection is dominated by tracing the live object graph
(§2.1), so both minor and full collections charge time proportional to the
number of live objects they must visit, plus per-byte copy/sweep terms.

Stop-the-world collectors (Parallel Scavenge) charge the whole cost as an
application pause.  Mostly-concurrent collectors (CMS, G1) run the old-gen
collection on background threads: only ``pause_fraction`` of the work stops
the world, the rest overlaps with the application except for a
``concurrent_tax`` interference slowdown.  In exchange their *young*
collections are more expensive (``minor_multiplier``: card tables,
remembered-set refinement) — which is why, in the paper's Table 4, CMS/G1
rescue the GC-bound LR job yet make the shuffle-heavy (minor-GC-heavy) PR
job slower overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GcAlgorithm, GcCostModel, gc_cost_model


@dataclass(frozen=True)
class CollectionCost:
    """Time split of one collection."""

    pause_ms: float
    concurrent_ms: float

    @property
    def total_ms(self) -> float:
        return self.pause_ms + self.concurrent_ms


class CollectorModel:
    """Maps live-set shape to collection cost for one collector."""

    def __init__(self, algorithm: GcAlgorithm,
                 costs: GcCostModel | None = None) -> None:
        self.algorithm = algorithm
        self.costs = costs if costs is not None else gc_cost_model(algorithm)

    # -- minor collections ---------------------------------------------------
    def minor_cost(self, live_young_objects: int,
                   survivor_bytes: int) -> CollectionCost:
        """Cost of scavenging the young generation.

        Young collections are stop-the-world for all three collectors; cost
        scales with the *surviving* population that must be traced and
        copied — dead young objects are free, which is the generational
        hypothesis the paper leans on (§2.1).
        """
        c = self.costs
        work = c.minor_multiplier * (
            c.minor_base_ms
            + c.minor_trace_per_object_ms * live_young_objects
            + c.minor_copy_per_byte_ms * survivor_bytes
        )
        return CollectionCost(pause_ms=work, concurrent_ms=0.0)

    # -- full collections -----------------------------------------------------
    def full_cost(self, live_objects: int, live_bytes: int) -> CollectionCost:
        """Cost of collecting the whole heap.

        The trace term visits every live object — for Spark that means every
        cached record, every collection, which is the "unavailing full GC"
        effect of §2.2; for Deca it means a handful of pages.
        """
        c = self.costs
        work = (
            c.full_base_ms
            + c.full_trace_per_object_ms * live_objects
            + c.full_sweep_per_byte_ms * live_bytes
        )
        pause = work * c.pause_fraction
        # The rest of the work runs concurrently: it does not stop the
        # application, but the collector threads steal cycles — only the
        # interference fraction reaches the application clock.
        concurrent = work * (1.0 - c.pause_fraction) * c.concurrent_tax
        return CollectionCost(pause_ms=pause, concurrent_ms=concurrent)

    def __repr__(self) -> str:
        return f"CollectorModel({self.algorithm.value})"
