"""GC event log and aggregate statistics for the simulated heap."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class GcKind(enum.Enum):
    """Which collection ran."""

    MINOR = "minor"
    FULL = "full"


@dataclass(frozen=True)
class GcEvent:
    """One garbage collection, as the paper's GC logs would record it."""

    kind: GcKind
    start_ms: float
    pause_ms: float
    concurrent_ms: float
    traced_objects: int
    reclaimed_bytes: int
    promoted_bytes: int
    live_objects_after: int
    used_bytes_after: int

    @property
    def total_cost_ms(self) -> float:
        """Pause plus concurrent collector CPU time."""
        return self.pause_ms + self.concurrent_ms


@dataclass
class GcStats:
    """Aggregate collector statistics for one simulated heap."""

    events: list[GcEvent] = field(default_factory=list)

    def record(self, event: GcEvent) -> None:
        self.events.append(event)

    # -- aggregates -----------------------------------------------------------
    @property
    def minor_count(self) -> int:
        return sum(1 for e in self.events if e.kind is GcKind.MINOR)

    @property
    def full_count(self) -> int:
        return sum(1 for e in self.events if e.kind is GcKind.FULL)

    @property
    def pause_ms(self) -> float:
        """Total stop-the-world time (what the paper reports as "GC time")."""
        return sum(e.pause_ms for e in self.events)

    @property
    def concurrent_ms(self) -> float:
        """Total concurrent collector CPU time (CMS/G1 background work)."""
        return sum(e.concurrent_ms for e in self.events)

    @property
    def minor_pause_ms(self) -> float:
        return sum(e.pause_ms for e in self.events if e.kind is GcKind.MINOR)

    @property
    def full_pause_ms(self) -> float:
        return sum(e.pause_ms for e in self.events if e.kind is GcKind.FULL)

    @property
    def reclaimed_bytes(self) -> int:
        return sum(e.reclaimed_bytes for e in self.events)

    def merged_with(self, other: "GcStats") -> "GcStats":
        """Combine two logs (e.g. across executors), ordered by start time."""
        merged = GcStats(events=sorted(
            self.events + other.events, key=lambda e: e.start_ms))
        return merged
