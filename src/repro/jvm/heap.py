"""The generational simulated heap.

:class:`SimHeap` models exactly the JVM behaviour the paper analyses in §2:

* bump allocation into a **young generation**; when it fills, a **minor
  collection** traces the surviving young objects, kills the temporaries and
  promotes the long-living cohorts into the **old generation**;
* when the old generation's occupancy crosses a threshold, a **full
  collection** traces *every* live object in the heap — which is where
  Spark's millions of cached records burn CPU without freeing anything, and
  where Deca's handful of pages cost nothing;
* allocations larger than half the young generation go straight to the old
  generation (the "humongous" path), which is how Deca's multi-megabyte
  pages behave on a real JVM;
* when even a full collection cannot make room, registered *pressure
  handlers* (the cache manager's LRU eviction, shuffle spill) are asked to
  release space before the heap declares :class:`OutOfMemoryError`.

All collection costs advance the owning :class:`~repro.simtime.SimClock` and
are logged into :class:`~repro.jvm.stats.GcStats`.
"""

from __future__ import annotations

import math
from typing import Callable

from ..config import DecaConfig
from ..errors import AllocationError, OutOfMemoryError
from ..simtime import SimClock
from .collectors import CollectorModel
from .objects import AllocationGroup, Lifetime
from .stats import GcEvent, GcKind, GcStats

# A pressure handler tries to release at least the requested number of live
# bytes (by freeing allocation groups) and returns the bytes it released.
PressureHandler = Callable[[int], int]

# A GC listener observes every collection as it is recorded; the executor
# forwards these into the run's trace and the heap profiler accumulates
# its pause timeline from the same stream.
GcListener = Callable[[GcEvent], None]


class SimHeap:
    """A generational heap with simulated tracing collections."""

    def __init__(self, config: DecaConfig, clock: SimClock,
                 name: str = "heap") -> None:
        self.config = config
        self.clock = clock
        self.name = name
        self.collector = CollectorModel(config.gc_algorithm)
        self.stats = GcStats()
        self._groups: dict[int, AllocationGroup] = {}
        # Garbage = bytes of freed groups not yet swept by a collection.
        self._young_garbage = 0
        self._old_garbage = 0
        self._pressure_handlers: list[PressureHandler] = []
        self._gc_listeners: list[GcListener] = []
        self._in_full_gc = False

    # -- capacity and occupancy ------------------------------------------------
    @property
    def young_capacity(self) -> int:
        return self.config.young_bytes

    @property
    def old_capacity(self) -> int:
        return self.config.old_bytes

    @property
    def young_live_bytes(self) -> int:
        return sum(g.young_bytes for g in self._groups.values())

    @property
    def old_live_bytes(self) -> int:
        return sum(g.old_bytes for g in self._groups.values())

    @property
    def young_used_bytes(self) -> int:
        """Live young bytes plus unswept young garbage."""
        return self.young_live_bytes + self._young_garbage

    @property
    def old_used_bytes(self) -> int:
        """Live old bytes plus unswept old garbage."""
        return self.old_live_bytes + self._old_garbage

    @property
    def live_objects(self) -> int:
        """Total live object population (what full collections must trace)."""
        return sum(g.live_objects for g in self._groups.values())

    @property
    def live_bytes(self) -> int:
        return sum(g.live_bytes for g in self._groups.values())

    # -- group management -------------------------------------------------------
    def new_group(self, name: str, lifetime: Lifetime) -> AllocationGroup:
        """Create and register an allocation group."""
        group = AllocationGroup(name, lifetime)
        self._groups[group.group_id] = group
        return group

    def free_group(self, group: AllocationGroup) -> None:
        """End a group's lifetime: its objects become unswept garbage."""
        if group.group_id not in self._groups:
            raise AllocationError(
                f"group {group.name!r} does not belong to heap {self.name!r}")
        self._young_garbage += group.young_bytes
        self._old_garbage += group.old_bytes
        group.free()
        del self._groups[group.group_id]

    def add_pressure_handler(self, handler: PressureHandler) -> None:
        """Register a callback asked to release space under memory pressure."""
        self._pressure_handlers.append(handler)

    def add_gc_listener(self, listener: GcListener) -> None:
        """Register a callback observing every recorded collection."""
        self._gc_listeners.append(listener)

    def _record_gc(self, event: GcEvent) -> None:
        self.stats.record(event)
        for listener in self._gc_listeners:
            listener(event)

    # -- allocation ---------------------------------------------------------------
    def allocate(self, group: AllocationGroup, objects: int,
                 nbytes: int) -> None:
        """Allocate *objects* totalling *nbytes* into *group*.

        Triggers minor/full collections as the generations fill, exactly in
        the order a Hotspot heap would.
        """
        if group.group_id not in self._groups:
            raise AllocationError(
                f"group {group.name!r} does not belong to heap {self.name!r}")
        if objects < 0 or nbytes < 0:
            raise AllocationError("allocation sizes cannot be negative")
        if nbytes == 0 and objects == 0:
            return
        if nbytes > self.config.heap_bytes:
            raise OutOfMemoryError(
                f"{self.name}: requested {nbytes} B exceeds the "
                f"{self.config.heap_bytes} B heap")

        if nbytes > self.young_capacity // 2:
            # Humongous allocation: straight into the old generation.
            self._ensure_old_space(nbytes)
            group.record_allocation(objects, nbytes, into_old=True)
            return

        if self.young_used_bytes + nbytes > self.young_capacity:
            self.minor_gc()
        if self.young_used_bytes + nbytes > self.young_capacity:
            # Survivors pinned in the young generation still block us.
            self.full_gc()
        if self.young_used_bytes + nbytes > self.young_capacity:
            self._relieve_pressure(nbytes)
        if self.young_used_bytes + nbytes > self.young_capacity:
            raise OutOfMemoryError(
                f"{self.name}: young generation exhausted "
                f"({self.young_used_bytes}/{self.young_capacity} B, "
                f"need {nbytes} B)")
        group.record_allocation(objects, nbytes)

    # -- collections -----------------------------------------------------------
    def minor_gc(self) -> GcEvent:
        """Scavenge the young generation."""
        traced = 0
        survivor_bytes = 0
        promoted_bytes = 0
        reclaimed = self._young_garbage
        promotions: list[AllocationGroup] = []

        for group in self._groups.values():
            if group.young_objects == 0 and group.young_bytes == 0:
                continue
            if group.lifetime is Lifetime.PINNED:
                traced += group.young_objects
                survivor_bytes += group.young_bytes
                group.age += 1
                if group.age >= self.config.tenuring_threshold:
                    promotions.append(group)
            else:
                if group.age >= 1:
                    # Survivors of the previous scavenge hit the tenuring
                    # threshold and get promoted — but their references are
                    # gone, so they arrive in the old generation as floating
                    # garbage that only a full collection can reclaim.
                    # This is exactly the churn that drags Spark into
                    # repeated full GCs once the cache fills the old
                    # generation (§2.2).
                    _, dead = group.clear_young()
                    self._old_garbage += dead
                    promoted_bytes += dead
                else:
                    survivors = math.ceil(
                        group.young_objects * self.config.temp_survival_rate)
                    surv_bytes = math.ceil(
                        group.young_bytes * self.config.temp_survival_rate)
                    reclaimed += group.young_bytes - surv_bytes
                    group.young_objects = survivors
                    group.young_bytes = surv_bytes
                    group.age = 1
                    traced += survivors
                    survivor_bytes += surv_bytes

        for group in promotions:
            _, nbytes = group.promote_young()
            promoted_bytes += nbytes
        self._young_garbage = 0

        cost = self.collector.minor_cost(traced, survivor_bytes)
        self.clock.advance(cost.total_ms)
        event = GcEvent(
            kind=GcKind.MINOR,
            start_ms=self.clock.now_ms - cost.total_ms,
            pause_ms=cost.pause_ms,
            concurrent_ms=cost.concurrent_ms,
            traced_objects=traced,
            reclaimed_bytes=reclaimed,
            promoted_bytes=promoted_bytes,
            live_objects_after=self.live_objects,
            used_bytes_after=self.young_used_bytes + self.old_used_bytes,
        )
        self._record_gc(event)

        if (self.old_used_bytes
                > self.config.full_gc_threshold * self.old_capacity):
            self.full_gc()
        if self.old_used_bytes > self.old_capacity:
            # Promotion overflowed the old generation and the full
            # collection could not reclaim enough: ask the pressure
            # handlers (cache eviction, spill) before giving up.
            overflow = self.old_used_bytes - self.old_capacity
            self._relieve_pressure(overflow)
            if self.old_used_bytes > self.old_capacity:
                raise OutOfMemoryError(
                    f"{self.name}: promotion overflowed the old generation "
                    f"({self.old_used_bytes}/{self.old_capacity} B)")
        return event

    def full_gc(self) -> GcEvent | None:
        """Collect the whole heap (both generations).

        Traces every live object — the cost the paper's Table 3 measures —
        then sweeps all accumulated garbage and promotes surviving pinned
        young objects.
        """
        if self._in_full_gc:
            return None
        self._in_full_gc = True
        try:
            traced = 0
            reclaimed = self._young_garbage + self._old_garbage
            promoted_bytes = 0

            for group in self._groups.values():
                if group.lifetime is Lifetime.PINNED:
                    traced += group.live_objects
                    if group.young_bytes:
                        _, nbytes = group.promote_young()
                        promoted_bytes += nbytes
                else:
                    # Full collections kill everything only reachable from
                    # dead UDF frames, old or young.
                    _, dead_young = group.clear_young()
                    dead_old = group.old_bytes
                    group.old_objects = 0
                    group.old_bytes = 0
                    reclaimed += dead_young + dead_old

            self._young_garbage = 0
            self._old_garbage = 0

            cost = self.collector.full_cost(traced, self.live_bytes)
            self.clock.advance(cost.total_ms)
            event = GcEvent(
                kind=GcKind.FULL,
                start_ms=self.clock.now_ms - cost.total_ms,
                pause_ms=cost.pause_ms,
                concurrent_ms=cost.concurrent_ms,
                traced_objects=traced,
                reclaimed_bytes=reclaimed,
                promoted_bytes=promoted_bytes,
                live_objects_after=self.live_objects,
                used_bytes_after=self.young_used_bytes + self.old_used_bytes,
            )
            self._record_gc(event)
            return event
        finally:
            self._in_full_gc = False

    # -- internals ----------------------------------------------------------------
    def _ensure_old_space(self, nbytes: int) -> None:
        if self.old_used_bytes + nbytes <= self.old_capacity:
            # Even when it fits, crossing the occupancy threshold triggers
            # a (possibly futile) full collection first — §2.2's pathology.
            if (self.old_used_bytes + nbytes
                    > self.config.full_gc_threshold * self.old_capacity):
                self.full_gc()
            return
        self.full_gc()
        if self.old_used_bytes + nbytes <= self.old_capacity:
            return
        self._relieve_pressure(nbytes)
        if self.old_used_bytes + nbytes > self.old_capacity:
            raise OutOfMemoryError(
                f"{self.name}: old generation exhausted "
                f"({self.old_used_bytes}/{self.old_capacity} B, "
                f"need {nbytes} B)")

    def _relieve_pressure(self, nbytes: int) -> None:
        """Ask pressure handlers (cache eviction, spill) to release space."""
        for handler in self._pressure_handlers:
            freed = handler(nbytes)
            if freed > 0:
                self.full_gc()
            if (self.old_used_bytes + nbytes <= self.old_capacity
                    and self.young_used_bytes + nbytes
                    <= self.young_capacity):
                return

    def __repr__(self) -> str:
        return (
            f"SimHeap({self.name!r}, young={self.young_used_bytes}/"
            f"{self.young_capacity} B, old={self.old_used_bytes}/"
            f"{self.old_capacity} B, live_objects={self.live_objects})"
        )
