"""JVM object-layout arithmetic.

These functions reproduce the memory footprint of objects on a 64-bit
Hotspot JVM with compressed ordinary object pointers (the configuration the
paper's 20–30 GB heaps run under):

* every object carries a 12-byte header, padded to 8-byte alignment;
* arrays carry an extra 4-byte length slot (16-byte header total);
* references are 4 bytes (compressed oops).

Figure 2 of the paper is exactly this arithmetic: a cached ``LabeledPoint``
costs three headers plus two references plus the primitives, whereas the
decomposed form costs the primitives alone.  The cache-size bars of
Figs. 9–10 and Table 6 come out of these numbers.
"""

from __future__ import annotations

from ..errors import TypeGraphError

ALIGNMENT = 8
OBJECT_HEADER_BYTES = 12
ARRAY_HEADER_BYTES = 16
REFERENCE_BYTES = 4

_PRIMITIVE_BYTES: dict[str, int] = {
    "boolean": 1,
    "byte": 1,
    "char": 2,
    "short": 2,
    "int": 4,
    "float": 4,
    "long": 8,
    "double": 8,
}


def primitive_bytes(name: str) -> int:
    """Size of the JVM primitive *name* (``"int"``, ``"double"``, ...)."""
    try:
        return _PRIMITIVE_BYTES[name]
    except KeyError:
        raise TypeGraphError(f"unknown primitive type: {name!r}") from None


def align(size: int, alignment: int = ALIGNMENT) -> int:
    """Round *size* up to the next multiple of *alignment*."""
    if size < 0:
        raise TypeGraphError(f"negative size: {size}")
    remainder = size % alignment
    if remainder == 0:
        return size
    return size + alignment - remainder


def object_bytes(reference_fields: int, primitive_field_bytes: int) -> int:
    """Heap footprint of one plain object.

    *reference_fields* is the number of reference-typed instance fields and
    *primitive_field_bytes* the summed size of the primitive ones.
    """
    if reference_fields < 0 or primitive_field_bytes < 0:
        raise TypeGraphError("field counts cannot be negative")
    payload = reference_fields * REFERENCE_BYTES + primitive_field_bytes
    return align(OBJECT_HEADER_BYTES + payload)


def array_bytes(element_bytes: int, length: int) -> int:
    """Heap footprint of one array of *length* elements of *element_bytes*.

    For reference arrays pass ``element_bytes=REFERENCE_BYTES``.
    """
    if element_bytes <= 0:
        raise TypeGraphError(f"element size must be positive: {element_bytes}")
    if length < 0:
        raise TypeGraphError(f"negative array length: {length}")
    return align(ARRAY_HEADER_BYTES + element_bytes * length)


def boxed_bytes(primitive: str) -> int:
    """Heap footprint of a boxed primitive (``java.lang.Double`` etc.).

    Generic containers (Spark shuffle buffers holding ``Tuple2[K, V]``) box
    their primitives; Table 5 attributes part of Deca's PR speedup to
    avoiding exactly this.
    """
    return object_bytes(0, primitive_bytes(primitive))
