"""Phased refinement (paper §3.4).

A job stage consists of phases — top-level loops bridged by materialized
data collectors (Fig. 5).  A type's variability can differ between phases:
a Value array built by ``groupByKey`` grows while the shuffle phase appends
to it (VST there), but once emitted into a cached RDD the subsequent phases
never reassign it, so it is an RFST *for them* — and can be decomposed in
the long-living cache even though it could not be decomposed in the shuffle
buffer (Fig. 7(b)).

:class:`PhasedClassifier` runs the global classification once per phase,
using that phase's own call graph.  For phases that *read* objects
materialized by an earlier phase, the arrays those objects carry are already
fully constructed, so their array types are assumed fixed-length-per-
instance (they enter the RFST check, not the SFST one) via the
``assume_init_only``/``assume_fixed_length`` hooks of
:class:`~repro.analysis.global_refine.GlobalClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import CallGraph
from .global_refine import GlobalClassifier
from .local import classify_locally
from .size_type import SizeType
from .udt import DataType, Field


@dataclass(frozen=True)
class Phase:
    """One phase of a stage: a name plus the call graph of its loop body.

    *reads_materialized* marks phases whose input objects come from a data
    collector written by an earlier phase (every phase but the first in
    Fig. 5's template); their input arrays are fully constructed.
    """

    name: str
    callgraph: CallGraph
    reads_materialized: bool = False


@dataclass(frozen=True)
class PhaseReport:
    """The per-phase size-types of one UDT."""

    udt: DataType
    local: SizeType
    by_phase: tuple[tuple[str, SizeType], ...]

    def size_type_in(self, phase_name: str) -> SizeType:
        for name, size_type in self.by_phase:
            if name == phase_name:
                return size_type
        known = ", ".join(name for name, _ in self.by_phase)
        raise KeyError(f"no phase {phase_name!r} "
                       f"(phases of this report: {known})")

    @property
    def ever_decomposable(self) -> bool:
        """Whether any phase may store this UDT decomposed."""
        return any(st.decomposable for _, st in self.by_phase)


class PhasedClassifier:
    """Runs the global classification per phase of a job stage."""

    def __init__(self, phases: tuple[Phase, ...]) -> None:
        self.phases = phases

    def assumption_source(self, index: int) -> str | None:
        """The phase whose materialized output phase *index* reads.

        That is the phase vouching for the ``materialized_fields``
        assumptions — the nearest earlier phase, per Fig. 5's template of
        phases bridged by data collectors.
        """
        phase = self.phases[index]
        if not phase.reads_materialized or index == 0:
            return None
        return self.phases[index - 1].name

    def classifier_for(self, index: int,
                       materialized_fields: tuple[Field, ...] = ()
                       ) -> GlobalClassifier:
        """The global classifier phase *index* runs, assumptions included."""
        phase = self.phases[index]
        if phase.reads_materialized:
            return GlobalClassifier(
                phase.callgraph,
                assume_init_only=materialized_fields,
                assumption_source=self.assumption_source(index))
        return GlobalClassifier(phase.callgraph)

    def classify(self, udt: DataType,
                 materialized_fields: tuple[Field, ...] = ()) -> PhaseReport:
        """Classify *udt* in every phase.

        *materialized_fields* lists fields of records read from an earlier
        phase's collector that are fully initialized there — phases reading
        materialized data may treat them as init-only unless their own call
        graphs assign them again.
        """
        local = classify_locally(udt)
        results: list[tuple[str, SizeType]] = []
        for index, phase in enumerate(self.phases):
            if local is SizeType.RECURSIVELY_DEFINED:
                results.append((phase.name, local))
                continue
            classifier = self.classifier_for(index, materialized_fields)
            results.append((phase.name, classifier.classify(udt)))
        return PhaseReport(udt=udt, local=local, by_phase=tuple(results))
