"""Symbolized constant propagation (paper §3.3, Fig. 4).

Values entering the analysis scope from outside — I/O reads, driver-supplied
arguments — are represented by opaque *symbols*; the interpreter then tracks
**affine combinations** of symbols and constants through assignments and
arithmetic.  This is exactly what Fig. 4 needs::

    a = input.readString().toInt()   # a == Symbol(1)
    b = 2 + a - 1                    # b == Symbol(1) + 1
    c = a + 1                        # c == Symbol(1) + 1
    if foo(): array = new Array[Int](b)
    else:     array = new Array[Int](c)
    # both allocation sites have length Symbol(1) + 1  ->  fixed-length

The :class:`SymbolicInterpreter` abstractly executes a method body (with
calls inlined up to a depth bound, branches joined, loops widened) and
collects every array allocation site together with the field(s) the array is
assigned to.  :mod:`repro.analysis.global_refine` consumes those facts to
decide fixed-length-ness.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable, Mapping

from ..errors import IRError
from .ir import (
    ArrayLength,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    If,
    LoadField,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    Stmt,
    StoreElement,
    StoreField,
    SymInput,
)
from .udt import ArrayType, Field


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------

class _Top:
    """The unknown value (⊤)."""

    _instance: "_Top | None" = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤"


TOP = _Top()


@dataclass(frozen=True)
class Affine:
    """``offset + Σ coeff·symbol`` over the scope's input symbols.

    *coeffs* is a canonical (sorted, zero-free) tuple of
    ``(symbol_label, coefficient)`` pairs, so structural equality decides
    whether two lengths are provably equal.
    """

    coeffs: tuple[tuple[str, float], ...]
    offset: float

    @staticmethod
    def constant(value: int | float) -> "Affine":
        return Affine((), float(value))

    @staticmethod
    def symbol(label: str) -> "Affine":
        return Affine(((label, 1.0),), 0.0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def constant_value(self) -> float:
        if not self.is_constant:
            raise IRError(f"{self} is not a constant")
        return self.offset

    def _combine(self, other: "Affine", sign: float) -> "Affine":
        acc = dict(self.coeffs)
        for label, coeff in other.coeffs:
            acc[label] = acc.get(label, 0.0) + sign * coeff
        return Affine(_canonical(acc), self.offset + sign * other.offset)

    def __add__(self, other: "Affine") -> "Affine":
        return self._combine(other, 1.0)

    def __sub__(self, other: "Affine") -> "Affine":
        return self._combine(other, -1.0)

    def scaled(self, factor: float) -> "Affine":
        return Affine(
            _canonical({l: c * factor for l, c in self.coeffs}),
            self.offset * factor)

    def __repr__(self) -> str:
        parts = [f"{c:g}*{l}" for l, c in self.coeffs]
        parts.append(f"{self.offset:g}")
        return " + ".join(parts)


def _canonical(coeffs: Mapping[str, float]) -> tuple[tuple[str, float], ...]:
    return tuple(sorted(
        (label, coeff) for label, coeff in coeffs.items() if coeff != 0.0))


AbstractValue = Affine | _Top


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: equal affine values stay precise, otherwise ⊤."""
    if isinstance(a, Affine) and isinstance(b, Affine) and a == b:
        return a
    return TOP


# --------------------------------------------------------------------------
# Abstract object references
# --------------------------------------------------------------------------

class ObjectRef:
    """An object allocated inside the scope, tracked field-by-field."""

    __slots__ = ("fields",)

    def __init__(self) -> None:
        self.fields: dict[int, "EnvValue"] = {}

    def store(self, field: Field, value: "EnvValue") -> None:
        self.fields[id(field)] = value

    def load(self, field: Field) -> "EnvValue":
        return self.fields.get(id(field), TOP)


class ArrayRef(ObjectRef):
    """An array allocated inside the scope; remembers its abstract length."""

    __slots__ = ("array_type", "length")

    def __init__(self, array_type: ArrayType, length: AbstractValue) -> None:
        super().__init__()
        self.array_type = array_type
        self.length = length


EnvValue = AbstractValue | ObjectRef


@dataclass(frozen=True)
class AllocationSite:
    """One array allocation observed flowing into a field store."""

    array_type: ArrayType
    length: AbstractValue


@dataclass
class ScopeFacts:
    """Everything the global classifier needs from one interpretation."""

    # Every array allocation site whose result was stored into a field,
    # keyed by the field.
    field_array_sites: dict[int, list[AllocationSite]] = \
        dc_field(default_factory=dict)
    # All array allocation sites in the scope, keyed by array type identity.
    array_sites: dict[int, list[AllocationSite]] = \
        dc_field(default_factory=dict)
    # Field identity -> Field object (for reporting).
    fields_seen: dict[int, Field] = dc_field(default_factory=dict)

    def record_array_site(self, site: AllocationSite) -> None:
        self.array_sites.setdefault(id(site.array_type), []).append(site)

    def record_field_store(self, field: Field, site: AllocationSite) -> None:
        self.fields_seen[id(field)] = field
        self.field_array_sites.setdefault(id(field), []).append(site)

    def sites_for_field(self, field: Field) -> list[AllocationSite]:
        return self.field_array_sites.get(id(field), [])

    def sites_for_type(self, array_type: ArrayType) -> list[AllocationSite]:
        return self.array_sites.get(id(array_type), [])


# --------------------------------------------------------------------------
# The interpreter
# --------------------------------------------------------------------------

class SymbolicInterpreter:
    """Abstractly executes a method, collecting :class:`ScopeFacts`.

    Branches are joined, loops widened (one throw-away iteration to find the
    changing locals, then one recorded iteration with those locals at ⊤),
    and calls inlined to *max_depth*.
    """

    def __init__(self, max_depth: int = 32) -> None:
        self.max_depth = max_depth
        self.facts = ScopeFacts()
        self._loop_depth = 0

    def run(self, method: Method,
            args: Mapping[str, EnvValue] | None = None) -> ScopeFacts:
        """Interpret *method* with abstract *args*; returns the facts."""
        env: dict[str, EnvValue] = dict(args or {})
        for param in method.params:
            env.setdefault(param, TOP)
        self._exec_body(method.body, env, depth=0, record=True)
        return self.facts

    # -- statement execution ------------------------------------------------
    def _exec_body(self, body: Iterable[Stmt], env: dict[str, EnvValue],
                   depth: int, record: bool) -> EnvValue:
        """Execute statements; returns the method's abstract return value."""
        result: EnvValue = TOP
        saw_return = False
        for stmt in body:
            if isinstance(stmt, Assign):
                env[stmt.target] = self._eval(stmt.expr, env)
            elif isinstance(stmt, NewArray):
                length = self._eval_numeric(stmt.length, env)
                ref = ArrayRef(stmt.array_type, length)
                if record:
                    self.facts.record_array_site(
                        AllocationSite(stmt.array_type, length))
                env[stmt.target] = ref
            elif isinstance(stmt, NewObject):
                ref = ObjectRef()
                env[stmt.target] = ref
                if stmt.ctor is not None and depth < self.max_depth:
                    call_env = self._bind_args(
                        stmt.ctor, stmt.args, env, receiver=ref)
                    self._exec_body(stmt.ctor.body, call_env,
                                    depth + 1, record)
            elif isinstance(stmt, StoreField):
                value = self._eval(stmt.value, env)
                target = env.get(stmt.obj, TOP)
                if isinstance(target, ObjectRef):
                    target.store(stmt.field, value)
                if record and isinstance(value, ArrayRef):
                    self.facts.record_field_store(
                        stmt.field,
                        AllocationSite(value.array_type, value.length))
            elif isinstance(stmt, StoreElement):
                pass  # element writes never affect lengths or field sites
            elif isinstance(stmt, Call):
                value = self._exec_call(stmt, env, depth, record)
                if stmt.target is not None:
                    env[stmt.target] = value
            elif isinstance(stmt, If):
                then_env = dict(env)
                else_env = dict(env)
                self._exec_body(stmt.then_body, then_env, depth, record)
                self._exec_body(stmt.else_body, else_env, depth, record)
                env.clear()
                env.update(_join_envs(then_env, else_env))
            elif isinstance(stmt, Loop):
                self._loop_depth += 1
                try:
                    probe_env = dict(env)
                    self._exec_body(stmt.body, probe_env, depth, record=False)
                    for name, after in probe_env.items():
                        before = env.get(name)
                        if not _env_values_equal(before, after):
                            env[name] = TOP
                    self._exec_body(stmt.body, env, depth, record)
                finally:
                    self._loop_depth -= 1
            elif isinstance(stmt, Return):
                value = (TOP if stmt.expr is None
                         else self._eval(stmt.expr, env))
                if not saw_return:
                    result = value
                    saw_return = True
                else:
                    result = _join_env_value(result, value)
            else:
                raise IRError(f"unknown statement {stmt!r}")
        return result

    def _exec_call(self, stmt: Call, env: dict[str, EnvValue],
                   depth: int, record: bool) -> EnvValue:
        if depth >= self.max_depth:
            return TOP
        call_env = self._bind_args(stmt.method, stmt.args, env,
                                   receiver=env.get(stmt.receiver, TOP)
                                   if stmt.receiver else None)
        return self._exec_body(stmt.method.body, call_env, depth + 1, record)

    def _bind_args(self, method: Method, args: tuple[Expr, ...],
                   env: dict[str, EnvValue],
                   receiver: EnvValue | None = None) -> dict[str, EnvValue]:
        call_env: dict[str, EnvValue] = {}
        if receiver is not None:
            call_env["this"] = receiver
        for param, arg in zip(method.params, args):
            call_env[param] = self._eval(arg, env)
        for param in method.params[len(args):]:
            call_env[param] = TOP
        return call_env

    # -- expression evaluation -------------------------------------------------
    def _eval(self, expr: Expr, env: dict[str, EnvValue]) -> EnvValue:
        if isinstance(expr, Const):
            return Affine.constant(expr.value)
        if isinstance(expr, Local):
            return env.get(expr.name, TOP)
        if isinstance(expr, SymInput):
            # A value read *inside* a loop differs per iteration, so it is
            # unknown; only values read once (and hoisted before the loop)
            # become symbols the propagation can reason about (Fig. 4).
            if self._loop_depth > 0:
                return TOP
            return Affine.symbol(expr.label)
        if isinstance(expr, BinOp):
            lhs = self._eval_numeric(expr.lhs, env)
            rhs = self._eval_numeric(expr.rhs, env)
            return _apply(expr.op, lhs, rhs)
        if isinstance(expr, LoadField):
            obj = env.get(expr.obj, TOP)
            if isinstance(obj, ObjectRef):
                return obj.load(expr.field)
            return TOP
        if isinstance(expr, ArrayLength):
            arr = env.get(expr.array, TOP)
            if isinstance(arr, ArrayRef):
                return arr.length
            return TOP
        raise IRError(f"unknown expression {expr!r}")

    def _eval_numeric(self, expr: Expr,
                      env: dict[str, EnvValue]) -> AbstractValue:
        value = self._eval(expr, env)
        if isinstance(value, ObjectRef):
            return TOP
        return value


def _apply(op: str, lhs: AbstractValue, rhs: AbstractValue) -> AbstractValue:
    if not isinstance(lhs, Affine) or not isinstance(rhs, Affine):
        return TOP
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        if lhs.is_constant:
            return rhs.scaled(lhs.constant_value)
        if rhs.is_constant:
            return lhs.scaled(rhs.constant_value)
        return TOP
    raise IRError(f"unsupported operator {op!r}")


def _env_values_equal(a: EnvValue | None, b: EnvValue | None) -> bool:
    if a is None or b is None:
        return a is b
    if isinstance(a, ObjectRef) or isinstance(b, ObjectRef):
        return a is b
    return a == b


def _join_env_value(a: EnvValue, b: EnvValue) -> EnvValue:
    if isinstance(a, ObjectRef) or isinstance(b, ObjectRef):
        return a if a is b else TOP
    return join(a, b)


def _join_envs(a: dict[str, EnvValue],
               b: dict[str, EnvValue]) -> dict[str, EnvValue]:
    joined: dict[str, EnvValue] = {}
    for name in set(a) | set(b):
        if name in a and name in b:
            joined[name] = _join_env_value(a[name], b[name])
        else:
            joined[name] = TOP
    return joined
