"""A mini method-IR standing in for JVM bytecode.

The paper analyzes compiled Scala with the Soot framework; here applications
describe the relevant parts of their UDF/UDT code — constructors, field
assignments, array allocations — in a small statement language.  It is just
rich enough to drive the global analyses of §3.3:

* **symbolized constant propagation** (Fig. 4): values entering the scope
  from outside (I/O, arguments) become symbols, and the interpreter tracks
  affine expressions over them, so two array allocations with lengths
  ``2 + a - 1`` and ``a + 1`` are recognized as equal;
* **fixed-length array detection**: every ``NewArray`` whose result flows
  into a field store is an allocation site for that field;
* **init-only field detection**: counting ``StoreField`` occurrences per
  method and per constructor calling sequence.

Expressions and statements are plain frozen dataclasses; methods are lists
of statements.  There is no control-flow graph — branches are modelled by
``If`` joining both arms' effects and ``Loop`` by a single widened
iteration, which is all the paper's refinements require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..errors import IRError
from .udt import ArrayType, ClassType, Field


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class of IR expressions."""


@dataclass(frozen=True)
class Const(Expr):
    """An integer (or float) literal."""

    value: int | float


@dataclass(frozen=True)
class Local(Expr):
    """A read of a local variable or parameter."""

    name: str


@dataclass(frozen=True)
class SymInput(Expr):
    """A value entering the analysis scope from the outside.

    Anything read from I/O or passed in from beyond the call graph becomes
    an opaque symbol for the constant propagation (Fig. 4's ``Symbol(1)``).
    Two ``SymInput`` with the same *label* denote the same runtime value.
    """

    label: str


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic expression (``+``, ``-``, ``*``)."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*"):
            raise IRError(f"unsupported operator {self.op!r}")


@dataclass(frozen=True)
class LoadField(Expr):
    """Read ``obj.field`` where *obj* is a local variable name."""

    obj: str
    field: Field


@dataclass(frozen=True)
class ArrayLength(Expr):
    """Read ``arr.length`` where *arr* is a local variable name."""

    array: str


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt:
    """Base class of IR statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` into a local variable."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class NewObject(Stmt):
    """``target = new Cls(args...)`` — runs the class's constructor.

    *ctor* is the constructor's :class:`Method` body; ``None`` models a
    constructor outside the analysis scope (its effects are opaque).
    """

    target: str
    cls: ClassType
    ctor: "Method | None" = None
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class NewArray(Stmt):
    """``target = new Array[T](length)`` — an array allocation site."""

    target: str
    array_type: ArrayType
    length: Expr


@dataclass(frozen=True)
class StoreField(Stmt):
    """``obj.field = value`` where *obj* is a local variable name.

    ``obj`` may be ``"this"`` inside constructors and instance methods.
    """

    obj: str
    field: Field
    value: Expr


@dataclass(frozen=True)
class StoreElement(Stmt):
    """``arr[index] = value`` — array element assignment.

    Element fields are never init-only (§3.3 footnote 1); this statement
    exists so the analyses can see element writes without tracking indices.
    """

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class Call(Stmt):
    """``target = method(args...)`` — a call inside the analysis scope."""

    target: str | None
    method: "Method"
    args: tuple[Expr, ...] = ()
    receiver: str | None = None


@dataclass(frozen=True)
class Return(Stmt):
    """``return expr`` (or ``return`` when *expr* is None)."""

    expr: Expr | None = None


@dataclass(frozen=True)
class If(Stmt):
    """A branch whose condition is opaque to the analysis.

    The interpreter evaluates both arms and joins their environments, so a
    variable assigned different abstract values in the two arms widens to
    ⊤ — but assignments that agree (Fig. 4's two ``new Array[Int]`` sites)
    stay precise.
    """

    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Loop(Stmt):
    """A loop whose trip count is opaque to the analysis.

    Interpreted once with widening: any local whose abstract value changed
    during the iteration becomes ⊤.
    """

    body: tuple[Stmt, ...]


StatementLike = Union[Stmt]


@dataclass
class Method:
    """A method body in the analysis scope.

    ``owner`` is the class the method belongs to (``None`` for stage-level
    driver code).  ``is_constructor`` marks ``<init>`` bodies, which the
    init-only analysis treats specially.
    """

    name: str
    params: tuple[str, ...] = ()
    body: tuple[Stmt, ...] = ()
    owner: ClassType | None = None
    is_constructor: bool = False

    def __post_init__(self) -> None:
        self.params = tuple(self.params)
        self.body = tuple(self.body)
        if self.is_constructor and self.owner is None:
            raise IRError(f"constructor {self.name!r} must have an owner")

    @property
    def qualified_name(self) -> str:
        if self.owner is not None:
            return f"{self.owner.name}.{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"Method({self.qualified_name})"

    __hash__ = object.__hash__


def statements_recursive(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in *body*, descending into If/Loop blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from statements_recursive(stmt.then_body)
            yield from statements_recursive(stmt.else_body)
        elif isinstance(stmt, Loop):
            yield from statements_recursive(stmt.body)
