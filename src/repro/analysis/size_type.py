"""The size-type lattice (paper §3.1).

A UDT's *size-type* describes how the data-sizes of its instances may vary:

* ``STATIC_FIXED`` (SFST) — every instance has the same data-size, known
  before runtime, and it never changes;
* ``RUNTIME_FIXED`` (RFST) — instances may differ in data-size, but each
  instance's data-size is fixed once constructed;
* ``VARIABLE`` (VST) — an instance's data-size may change after
  construction (field reassignment, growable buffers, ...);
* ``RECURSIVELY_DEFINED`` — the type-dependency graph has a cycle, so
  object graphs may contain reference cycles and can never be decomposed.

The paper defines the total variability order SFST < RFST < VST; a
composite type is as variable as its most variable field.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..errors import AnalysisError


class SizeType(enum.Enum):
    """Variability classification of a UDT (paper §3.1)."""

    STATIC_FIXED = "static-fixed"
    RUNTIME_FIXED = "runtime-fixed"
    VARIABLE = "variable"
    RECURSIVELY_DEFINED = "recursively-defined"

    @property
    def decomposable(self) -> bool:
        """Whether objects of this size-type can be safely decomposed.

        Only SFSTs and RFSTs may be stored as byte sequences: anything else
        could outgrow its allocated segment and overwrite its neighbours
        (§3.1).
        """
        return self in (SizeType.STATIC_FIXED, SizeType.RUNTIME_FIXED)


_VARIABILITY_RANK: dict[SizeType, int] = {
    SizeType.STATIC_FIXED: 0,
    SizeType.RUNTIME_FIXED: 1,
    SizeType.VARIABLE: 2,
}


def variability_rank(size_type: SizeType) -> int:
    """Position of *size_type* in the SFST < RFST < VST order."""
    try:
        return _VARIABILITY_RANK[size_type]
    except KeyError:
        raise AnalysisError(
            "recursively-defined types have no variability rank") from None


def max_variability(size_types: Iterable[SizeType]) -> SizeType:
    """The most variable of *size_types* (empty input means SFST).

    A composite type's size-type is the join of its fields' size-types
    (Algorithm 1, lines 12–20).
    """
    result = SizeType.STATIC_FIXED
    for candidate in size_types:
        if variability_rank(candidate) > variability_rank(result):
            result = candidate
    return result
