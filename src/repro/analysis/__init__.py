"""UDT classification and code analysis (paper §3 and §4.3).

This package reproduces Deca's static analyses over a Python model of Scala
UDTs and a mini method-IR standing in for JVM bytecode (the paper uses the
Soot framework; see DESIGN.md for the substitution argument):

* :mod:`repro.analysis.udt` — the annotated type model: classes, fields with
  declared types and runtime *type-sets*, arrays, primitives;
* :mod:`repro.analysis.size_type` — the SFST < RFST < VST variability
  lattice plus recursively-defined types;
* :mod:`repro.analysis.local` — Algorithm 1, the local classification;
* :mod:`repro.analysis.ir` / :mod:`repro.analysis.callgraph` — method bodies
  and the per-scope call graph;
* :mod:`repro.analysis.symconst` — symbolized constant propagation (Fig. 4);
* :mod:`repro.analysis.global_refine` — Algorithms 2/3/4: init-only fields,
  fixed-length array detection, SFST/RFST refinement;
* :mod:`repro.analysis.phased` — per-phase refinement (§3.4);
* :mod:`repro.analysis.pointsto` — object-to-container binding (§4.3);
* :mod:`repro.analysis.closures` — bytecode-level purity / determinism /
  escape analysis of the Python UDFs the engine executes (the code the
  mini-IR cannot see).
"""

from .size_type import SizeType, max_variability
from .udt import (
    ArrayType,
    ClassType,
    DataType,
    Field,
    PrimitiveType,
    BOOLEAN,
    BYTE,
    CHAR,
    SHORT,
    INT,
    FLOAT,
    LONG,
    DOUBLE,
)
from .local import LocalClassifier, classify_locally
from .ir import (
    ArrayLength,
    Assign,
    BinOp,
    Call,
    Const,
    If,
    LoadField,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    StoreElement,
    StoreField,
    SymInput,
)
from .callgraph import CallGraph
from .symconst import Affine, TOP, AbstractValue, SymbolicInterpreter
from .global_refine import GlobalClassifier
from .phased import Phase, PhasedClassifier, PhaseReport
from .explain import (
    Provenance,
    ProvenanceStep,
    explain_classification,
    explain_phases,
    explain_provenance,
    render_provenance,
)
from .closures import (
    Capture,
    ClosureReport,
    Hazard,
    analyze_closure,
    analyze_value,
    code_location,
)
from .pointsto import (
    ContainerKind,
    ContainerRef,
    CreationSite,
    Ownership,
    PointsToBinding,
    assign_all,
    assign_ownership,
)

__all__ = [
    "SizeType",
    "max_variability",
    "ArrayType",
    "ClassType",
    "DataType",
    "Field",
    "PrimitiveType",
    "BOOLEAN",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "FLOAT",
    "LONG",
    "DOUBLE",
    "LocalClassifier",
    "classify_locally",
    "ArrayLength",
    "Assign",
    "BinOp",
    "Call",
    "Const",
    "If",
    "LoadField",
    "Local",
    "Loop",
    "Method",
    "NewArray",
    "NewObject",
    "Return",
    "StoreElement",
    "StoreField",
    "SymInput",
    "CallGraph",
    "Affine",
    "TOP",
    "AbstractValue",
    "SymbolicInterpreter",
    "GlobalClassifier",
    "Phase",
    "PhasedClassifier",
    "PhaseReport",
    "ContainerKind",
    "ContainerRef",
    "CreationSite",
    "Ownership",
    "PointsToBinding",
    "assign_all",
    "assign_ownership",
    "Capture",
    "ClosureReport",
    "Hazard",
    "analyze_closure",
    "analyze_value",
    "code_location",
    "Provenance",
    "ProvenanceStep",
    "explain_classification",
    "explain_phases",
    "explain_provenance",
    "render_provenance",
]
