"""Local classification analysis — Algorithm 1 of the paper.

The local classifier inspects only the type-dependency graph of a UDT:

1. a type-dependency cycle makes the UDT recursively-defined (never
   decomposable);
2. primitives are SFSTs;
3. an array of SFST elements is an RFST (instances differ in length but an
   instance's size is fixed); any other array is a VST;
4. a class is as variable as its most variable field;
5. a field is as variable as the most variable type in its type-set, except
   that a *non-final* field holding RFSTs becomes a VST — the field could be
   reassigned to an object of a different data-size (lines 28–30).

It is deliberately conservative; the global classifier
(:mod:`repro.analysis.global_refine`) refines its RFST/VST answers.
"""

from __future__ import annotations

from .size_type import SizeType, max_variability
from .udt import ArrayType, ClassType, DataType, Field, PrimitiveType, \
    type_dependency_cycle


class LocalClassifier:
    """Implements Algorithm 1 with memoization over the type graph."""

    def __init__(self) -> None:
        self._cache: dict[int, SizeType] = {}

    def classify(self, udt: DataType) -> SizeType:
        """Return the size-type of *udt* (the algorithm's entry point)."""
        if type_dependency_cycle(udt) is not None:
            return SizeType.RECURSIVELY_DEFINED
        return self._analyze_type(udt)

    # ``AnalyzeType`` (Algorithm 1, lines 4–22)
    def _analyze_type(self, target: DataType) -> SizeType:
        cached = self._cache.get(id(target))
        if cached is not None:
            return cached
        if isinstance(target, PrimitiveType):
            result = SizeType.STATIC_FIXED
        elif isinstance(target, ArrayType):
            element = self._analyze_field(target.element_field)
            if element is SizeType.STATIC_FIXED:
                result = SizeType.RUNTIME_FIXED
            else:
                result = SizeType.VARIABLE
        elif isinstance(target, ClassType):
            result = max_variability(
                self._analyze_field(field) for field in target.fields)
        else:
            raise TypeError(f"unexpected type node: {target!r}")
        self._cache[id(target)] = result
        return result

    # ``AnalyzeField`` (Algorithm 1, lines 23–34)
    def _analyze_field(self, field: Field) -> SizeType:
        result = SizeType.STATIC_FIXED
        for runtime_type in field.get_type_set():
            tmp = self._analyze_type(runtime_type)
            if tmp is SizeType.VARIABLE:
                return SizeType.VARIABLE
            if tmp is SizeType.RUNTIME_FIXED:
                if not field.final:
                    # The field may later point at an object with a
                    # different data-size, so the enclosing object's
                    # data-size could change (lines 28–29).
                    return SizeType.VARIABLE
                result = SizeType.RUNTIME_FIXED
        return result


def classify_locally(udt: DataType) -> SizeType:
    """One-shot convenience wrapper around :class:`LocalClassifier`."""
    return LocalClassifier().classify(udt)
