"""Explanations of classification decisions, human- and machine-readable.

``explain_classification`` walks a UDT the way Algorithms 1–4 do and
narrates every verdict — which field capped the size-type, which array
failed the fixed-length check, which field is or is not init-only.  The
Deca optimizer's plan reports give the *what*; this module gives the
*why*, which is what a user needs when their type unexpectedly stays in
object form.

``explain_provenance`` produces the same chain of reasoning as structured
data: a :class:`Provenance` holding one :class:`ProvenanceStep` per rule
firing, each tagged with a stable machine-readable rule id
(``algorithm-1.local``, ``algorithm-3.fixed-length``, …), the subject it
examined and the conclusion it reached.  ``repro.lint`` attaches these
chains to its findings, and the text renderer derives the human format
from the same steps, so the two can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import CallGraph
from .global_refine import GlobalClassifier
from .local import LocalClassifier, classify_locally
from .phased import Phase, PhasedClassifier
from .size_type import SizeType
from .symconst import Affine
from .udt import ArrayType, ClassType, DataType, Field, PrimitiveType, \
    type_dependency_cycle


@dataclass(frozen=True)
class ProvenanceStep:
    """One rule firing: which algorithm examined what, and its conclusion.

    *rule* is a stable machine id (``algorithm-1.local``,
    ``algorithm-3.fixed-length``, ``algorithm-4.init-only``, ``verdict``,
    …); *detail* is the human sentence the text renderer prints; *phase*
    names the analysis phase the step ran in, when phased refinement is
    involved (§3.4).
    """

    rule: str
    subject: str
    verdict: str
    detail: str = ""
    phase: str | None = None

    def to_dict(self) -> dict[str, str]:
        data = {"rule": self.rule, "subject": self.subject,
                "verdict": self.verdict}
        if self.detail:
            data["detail"] = self.detail
        if self.phase is not None:
            data["phase"] = self.phase
        return data


@dataclass(frozen=True)
class Provenance:
    """The full machine-readable provenance chain behind one verdict."""

    udt: str
    verdict: SizeType
    decomposable: bool
    steps: tuple[ProvenanceStep, ...]
    phase: str | None = None

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "udt": self.udt,
            "verdict": self.verdict.value,
            "decomposable": self.decomposable,
            "steps": [step.to_dict() for step in self.steps],
        }
        if self.phase is not None:
            data["phase"] = self.phase
        return data

    def rules_fired(self) -> tuple[str, ...]:
        return tuple(step.rule for step in self.steps)


# Steps whose detail lines are rendered at the inner indent level.
_DETAIL_RULES = frozenset({
    "algorithm-1.field",
    "algorithm-1.element",
    "algorithm-3.fixed-length",
    "algorithm-4.init-only",
})


def explain_classification(udt: DataType,
                           callgraph: CallGraph | None = None,
                           assume_init_only: tuple[Field, ...] = ()
                           ) -> str:
    """Return a multi-line explanation of *udt*'s size-type."""
    return render_provenance(
        explain_provenance(udt, callgraph,
                           assume_init_only=assume_init_only))


def render_provenance(provenance: Provenance) -> str:
    """Render a provenance chain in the classic multi-line text format."""
    lines = [f"classification of {provenance.udt}"]
    for step in provenance.steps:
        indent = "    " if step.rule in _DETAIL_RULES else "  "
        lines.append(indent + step.detail)
    return "\n".join(lines)


def explain_provenance(udt: DataType,
                       callgraph: CallGraph | None = None,
                       assume_init_only: tuple[Field, ...] = (),
                       phase: str | None = None,
                       assumption_source: str | None = None
                       ) -> Provenance:
    """Build the machine-readable provenance chain for *udt*'s verdict.

    *phase* tags every step with the phase the analysis ran in;
    *assumption_source* names the phase that vouched for the
    *assume_init_only* fields (so the explanation never drops the phase
    name when the verdict rests on another phase's work).
    """
    steps: list[ProvenanceStep] = []

    cycle = type_dependency_cycle(udt)
    if cycle is not None:
        path = " -> ".join(t.name for t in cycle)
        steps.append(ProvenanceStep(
            rule="algorithm-1.recursive", subject=udt.name,
            verdict=SizeType.RECURSIVELY_DEFINED.value,
            detail=f"recursively-defined: cycle {path}", phase=phase))
        steps.append(ProvenanceStep(
            rule="verdict", subject=udt.name,
            verdict=SizeType.RECURSIVELY_DEFINED.value,
            detail="verdict: recursively-defined (never decomposable)",
            phase=phase))
        return Provenance(udt=udt.name,
                          verdict=SizeType.RECURSIVELY_DEFINED,
                          decomposable=False, steps=tuple(steps),
                          phase=phase)

    local = classify_locally(udt)
    steps.append(ProvenanceStep(
        rule="algorithm-1.local", subject=udt.name, verdict=local.value,
        detail=f"local (Algorithm 1): {local.value}", phase=phase))
    steps.extend(_local_steps(udt, phase))

    if callgraph is None:
        steps.append(ProvenanceStep(
            rule="scope.missing", subject=udt.name, verdict=local.value,
            detail="no call graph: global refinement unavailable; "
                   "the local verdict stands", phase=phase))
        steps.append(ProvenanceStep(
            rule="verdict", subject=udt.name, verdict=local.value,
            detail=f"verdict: {local.value}", phase=phase))
        return Provenance(udt=udt.name, verdict=local,
                          decomposable=local.decomposable,
                          steps=tuple(steps), phase=phase)

    classifier = GlobalClassifier(callgraph,
                                  assume_init_only=assume_init_only,
                                  assumption_source=assumption_source)
    refined = classifier.classify(udt)
    steps.append(ProvenanceStep(
        rule="algorithm-2.global", subject=udt.name, verdict=refined.value,
        detail=f"global (Algorithms 2-4): {refined.value}", phase=phase))
    steps.extend(_global_steps(udt, classifier, phase))
    steps.append(ProvenanceStep(
        rule="verdict", subject=udt.name, verdict=refined.value,
        detail=f"verdict: {refined.value}"
               + (" (decomposable)" if refined.decomposable
                  else " (kept in object form)"),
        phase=phase))
    return Provenance(udt=udt.name, verdict=refined,
                      decomposable=refined.decomposable,
                      steps=tuple(steps), phase=phase)


def explain_phases(udt: DataType, phases: tuple[Phase, ...],
                   materialized_fields: tuple[Field, ...] = ()
                   ) -> tuple[Provenance, ...]:
    """One provenance chain per phase, mirroring §3.4's phased refinement.

    Every step carries its phase name; phases reading materialized data
    record which earlier phase vouched for the *materialized_fields*.
    """
    classifier = PhasedClassifier(phases)
    return tuple(
        explain_provenance(
            udt, phase.callgraph,
            assume_init_only=(materialized_fields
                              if phase.reads_materialized else ()),
            phase=phase.name,
            assumption_source=classifier.assumption_source(index))
        for index, phase in enumerate(phases))


def _local_steps(udt: DataType, phase: str | None) -> list[ProvenanceStep]:
    classifier = LocalClassifier()
    steps: list[ProvenanceStep] = []
    if isinstance(udt, ClassType):
        for field in udt.fields:
            verdict = classifier._analyze_field(field)
            modifier = "val" if field.final else "var"
            types = "/".join(t.name for t in field.get_type_set())
            note = ""
            if verdict is SizeType.VARIABLE and not field.final:
                inner = max(
                    (classifier._analyze_type(t)
                     for t in field.get_type_set()),
                    key=lambda s: 0 if s is SizeType.STATIC_FIXED else
                    (1 if s is SizeType.RUNTIME_FIXED else 2))
                if inner is SizeType.RUNTIME_FIXED:
                    note = (" (non-final field holding RFSTs: "
                            "reassignment could change the data-size)")
            steps.append(ProvenanceStep(
                rule="algorithm-1.field",
                subject=f"{udt.name}.{field.name}",
                verdict=verdict.value,
                detail=f"{modifier} {field.name}: {types} "
                       f"-> {verdict.value}{note}",
                phase=phase))
    elif isinstance(udt, ArrayType):
        element = classifier._analyze_field(udt.element_field)
        steps.append(ProvenanceStep(
            rule="algorithm-1.element", subject=udt.name,
            verdict=element.value,
            detail=f"element: {element.value} "
                   "(arrays of SFST elements are RFSTs; "
                   "anything else makes the array a VST)",
            phase=phase))
    return steps


def _global_steps(udt: DataType, classifier: GlobalClassifier,
                  phase: str | None) -> list[ProvenanceStep]:
    steps: list[ProvenanceStep] = []
    seen: set[int] = set()
    source = classifier.assumption_source

    def visit(node: DataType) -> None:
        if isinstance(node, PrimitiveType) or id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, ArrayType):
            fixed = classifier.is_fixed_length(node)
            sites = classifier.callgraph.facts.sites_for_type(node)
            if fixed and sites:
                length = sites[0].length
                shown = (f"= {length.constant_value:g}"
                         if isinstance(length, Affine)
                         and length.is_constant else f"= {length}")
                steps.append(ProvenanceStep(
                    rule="algorithm-3.fixed-length", subject=node.name,
                    verdict="fixed-length",
                    detail=f"{node.name}: fixed-length "
                           f"({len(sites)} allocation site(s), length "
                           f"{shown})",
                    phase=phase))
            elif fixed:
                vouched = (f"vouched for by phase {source!r}"
                           if source is not None
                           else "vouched for by an outer phase")
                steps.append(ProvenanceStep(
                    rule="algorithm-3.fixed-length", subject=node.name,
                    verdict="fixed-length-assumed",
                    detail=f"{node.name}: fixed-length ({vouched})",
                    phase=phase))
            elif not sites:
                steps.append(ProvenanceStep(
                    rule="algorithm-3.fixed-length", subject=node.name,
                    verdict="unknown-length",
                    detail=f"{node.name}: no allocation sites "
                           "in scope -> not provably fixed-length",
                    phase=phase))
            else:
                steps.append(ProvenanceStep(
                    rule="algorithm-3.fixed-length", subject=node.name,
                    verdict="variable-length",
                    detail=f"{node.name}: {len(sites)} "
                           "allocation site(s) with differing lengths "
                           "-> variable",
                    phase=phase))
            for runtime in node.element_field.get_type_set():
                visit(runtime)
        elif isinstance(node, ClassType):
            for field in node.fields:
                holds_non_sfst = any(
                    not isinstance(t, PrimitiveType)
                    and not classifier.srefine(t)
                    for t in field.get_type_set())
                if holds_non_sfst:
                    subject = f"{node.name}.{field.name}"
                    if classifier.is_assumed_init_only(field):
                        vouched = (f"vouched for by phase {source!r}"
                                   if source is not None
                                   else "vouched for by an outer phase")
                        steps.append(ProvenanceStep(
                            rule="algorithm-4.init-only", subject=subject,
                            verdict="init-only-assumed",
                            detail=f"{subject}: init-only ({vouched})",
                            phase=phase))
                    elif classifier.is_init_only(field):
                        steps.append(ProvenanceStep(
                            rule="algorithm-4.init-only", subject=subject,
                            verdict="init-only",
                            detail=f"{subject}: init-only "
                                   "(assigned once per object)",
                            phase=phase))
                    else:
                        steps.append(ProvenanceStep(
                            rule="algorithm-4.init-only", subject=subject,
                            verdict="not-init-only",
                            detail=f"{subject}: NOT init-only "
                                   "(reassignment possible) "
                                   "-> blocks RFST refinement",
                            phase=phase))
                for runtime in field.get_type_set():
                    visit(runtime)

    visit(udt)
    return steps
