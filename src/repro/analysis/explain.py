"""Human-readable explanations of classification decisions.

``explain_classification`` walks a UDT the way Algorithms 1–4 do and
narrates every verdict — which field capped the size-type, which array
failed the fixed-length check, which field is or is not init-only.  The
Deca optimizer's plan reports give the *what*; this module gives the
*why*, which is what a user needs when their type unexpectedly stays in
object form.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .global_refine import GlobalClassifier
from .local import LocalClassifier, classify_locally
from .size_type import SizeType
from .symconst import Affine
from .udt import ArrayType, ClassType, DataType, Field, PrimitiveType, \
    type_dependency_cycle


def explain_classification(udt: DataType,
                           callgraph: CallGraph | None = None,
                           assume_init_only: tuple[Field, ...] = ()
                           ) -> str:
    """Return a multi-line explanation of *udt*'s size-type."""
    lines: list[str] = [f"classification of {udt.name}"]

    cycle = type_dependency_cycle(udt)
    if cycle is not None:
        path = " -> ".join(t.name for t in cycle)
        lines.append(f"  recursively-defined: cycle {path}")
        lines.append("  verdict: recursively-defined (never decomposable)")
        return "\n".join(lines)

    local = classify_locally(udt)
    lines.append(f"  local (Algorithm 1): {local.value}")
    lines.extend(_explain_local(udt, indent="    "))

    if callgraph is None:
        lines.append("  no call graph: global refinement unavailable; "
                     "the local verdict stands")
        lines.append(f"  verdict: {local.value}")
        return "\n".join(lines)

    classifier = GlobalClassifier(callgraph,
                                  assume_init_only=assume_init_only)
    refined = classifier.classify(udt)
    lines.append(f"  global (Algorithms 2-4): {refined.value}")
    lines.extend(_explain_global(udt, classifier, indent="    "))
    lines.append(f"  verdict: {refined.value}"
                 + (" (decomposable)" if refined.decomposable
                    else " (kept in object form)"))
    return "\n".join(lines)


def _explain_local(udt: DataType, indent: str) -> list[str]:
    classifier = LocalClassifier()
    lines: list[str] = []
    if isinstance(udt, ClassType):
        for field in udt.fields:
            verdict = classifier._analyze_field(field)
            modifier = "val" if field.final else "var"
            types = "/".join(t.name for t in field.get_type_set())
            note = ""
            if verdict is SizeType.VARIABLE and not field.final:
                inner = max(
                    (classifier._analyze_type(t)
                     for t in field.get_type_set()),
                    key=lambda s: 0 if s is SizeType.STATIC_FIXED else
                    (1 if s is SizeType.RUNTIME_FIXED else 2))
                if inner is SizeType.RUNTIME_FIXED:
                    note = (" (non-final field holding RFSTs: "
                            "reassignment could change the data-size)")
            lines.append(f"{indent}{modifier} {field.name}: {types} "
                         f"-> {verdict.value}{note}")
    elif isinstance(udt, ArrayType):
        element = classifier._analyze_field(udt.element_field)
        lines.append(f"{indent}element: {element.value} "
                     "(arrays of SFST elements are RFSTs; "
                     "anything else makes the array a VST)")
    return lines


def _explain_global(udt: DataType, classifier: GlobalClassifier,
                    indent: str) -> list[str]:
    lines: list[str] = []
    seen: set[int] = set()

    def visit(node: DataType) -> None:
        if isinstance(node, PrimitiveType) or id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, ArrayType):
            fixed = classifier.is_fixed_length(node)
            sites = classifier.callgraph.facts.sites_for_type(node)
            if fixed and sites:
                length = sites[0].length
                shown = (f"= {length.constant_value:g}"
                         if isinstance(length, Affine)
                         and length.is_constant else f"= {length}")
                lines.append(f"{indent}{node.name}: fixed-length "
                             f"({len(sites)} allocation site(s), length "
                             f"{shown})")
            elif fixed:
                lines.append(f"{indent}{node.name}: fixed-length "
                             "(vouched for by an outer phase)")
            elif not sites:
                lines.append(f"{indent}{node.name}: no allocation sites "
                             "in scope -> not provably fixed-length")
            else:
                lines.append(f"{indent}{node.name}: {len(sites)} "
                             "allocation site(s) with differing lengths "
                             "-> variable")
            for runtime in node.element_field.get_type_set():
                visit(runtime)
        elif isinstance(node, ClassType):
            for field in node.fields:
                holds_non_sfst = any(
                    not isinstance(t, PrimitiveType)
                    and not classifier.srefine(t)
                    for t in field.get_type_set())
                if holds_non_sfst:
                    init_only = classifier.is_init_only(field)
                    lines.append(
                        f"{indent}{node.name}.{field.name}: "
                        + ("init-only (assigned once per object)"
                           if init_only else
                           "NOT init-only (reassignment possible) "
                           "-> blocks RFST refinement"))
                for runtime in field.get_type_set():
                    visit(runtime)

    visit(udt)
    return lines
