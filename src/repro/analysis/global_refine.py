"""Global classification analysis — Algorithms 2, 3 and 4 of the paper.

The local classifier (Algorithm 1) is conservative: it assumes any non-final
field may be re-pointed at differently-sized objects and that every array may
have a different length.  The global classifier breaks those assumptions
with whole-scope code analysis:

* **fixed-length array types** — all allocation sites of an array type in
  the scope's call graph construct it with provably equal lengths (decided
  by symbolized constant propagation, Fig. 4);
* **init-only fields** — assigned at most once per object during execution
  (final, or only-in-constructors-once; array element fields never qualify).

``SRefine`` (Algorithm 3) then promotes a type to SFST when every array in
its dependency graph is fixed-length with SFST elements; ``RRefine``
(Algorithm 4) promotes to RFST when every RFST-valued field is init-only.
"""

from __future__ import annotations

from typing import Sequence

from .callgraph import CallGraph
from .local import LocalClassifier
from .size_type import SizeType
from .symconst import Affine, AllocationSite
from .udt import ArrayType, ClassType, DataType, Field, PrimitiveType


class GlobalClassifier:
    """Implements Algorithms 2–4 over one analysis scope (a call graph).

    *assume_fixed_length* lists array types known to be fixed-length from
    facts outside this scope — the phased refinement (§3.4) uses it for
    arrays materialized by an earlier phase.  *assumption_source* names
    the phase those assumptions came from, so explanations and lint
    findings can say *which* phase vouched for them.
    """

    def __init__(self, callgraph: CallGraph,
                 assume_fixed_length: tuple[ArrayType, ...] = (),
                 assume_init_only: tuple[Field, ...] = (),
                 assumption_source: str | None = None) -> None:
        self.callgraph = callgraph
        self.assumption_source = assumption_source
        self._assumed_fixed = {id(t) for t in assume_fixed_length}
        self._assumed_init_only = {id(f) for f in assume_init_only}
        self._local = LocalClassifier()
        self._srefine_cache: dict[int, bool] = {}
        self._rrefine_cache: dict[int, bool] = {}
        self._in_progress: set[int] = set()

    # -- Algorithm 2 ----------------------------------------------------------
    def classify(self, udt: DataType) -> SizeType:
        """Return the refined size-type of *udt*."""
        local = self._local.classify(udt)
        if local is SizeType.RECURSIVELY_DEFINED:
            return local
        if local is SizeType.STATIC_FIXED:
            return local
        if self.srefine(udt):
            return SizeType.STATIC_FIXED
        if local is SizeType.RUNTIME_FIXED or self.rrefine(udt):
            return SizeType.RUNTIME_FIXED
        return SizeType.VARIABLE

    # -- Algorithm 3: SRefine ---------------------------------------------------
    def srefine(self, target: DataType) -> bool:
        """Can *target* be refined to a static fixed-sized type?"""
        if isinstance(target, PrimitiveType):
            return True
        key = id(target)
        cached = self._srefine_cache.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return False  # defensive: cyclic graphs never SRefine
        self._in_progress.add(key)
        try:
            result = self._srefine_uncached(target)
        finally:
            self._in_progress.discard(key)
        self._srefine_cache[key] = result
        return result

    def _srefine_uncached(self, target: DataType) -> bool:
        for field in _fields_of(target):
            for runtime_type in field.get_type_set():
                if isinstance(runtime_type, PrimitiveType):
                    continue
                if isinstance(runtime_type, ArrayType) \
                        and self.is_fixed_length(runtime_type,
                                                 field=field) \
                        and self._elements_srefine(runtime_type):
                    # Fixed-length w.r.t. this field (§3.3): the array
                    # type may vary elsewhere, but every instance this
                    # field ever holds has the same proven length.
                    continue
                if not self.srefine(runtime_type):
                    return False
        if isinstance(target, ArrayType) and not self.is_fixed_length(target):
            return False
        return True

    def _elements_srefine(self, array_type: ArrayType) -> bool:
        return all(isinstance(t, PrimitiveType) or self.srefine(t)
                   for t in array_type.element_field.get_type_set())

    # -- Algorithm 4: RRefine ------------------------------------------------------
    def rrefine(self, target: DataType) -> bool:
        """Can *target* be refined to a runtime fixed-sized type?"""
        if isinstance(target, PrimitiveType):
            return True
        key = id(target)
        cached = self._rrefine_cache.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return False
        self._in_progress.add(key)
        try:
            result = self._rrefine_uncached(target)
        finally:
            self._in_progress.discard(key)
        self._rrefine_cache[key] = result
        return result

    def _rrefine_uncached(self, target: DataType) -> bool:
        for field in _fields_of(target):
            field_holds_rfst = False
            for runtime_type in field.get_type_set():
                if isinstance(runtime_type, PrimitiveType):
                    continue
                if self.srefine(runtime_type):
                    continue
                if self.rrefine(runtime_type):
                    field_holds_rfst = True
                else:
                    return False
            if field_holds_rfst and not self.is_init_only(field):
                return False
        return True

    # -- code-analysis predicates -----------------------------------------------
    def is_fixed_length(self, array_type: ArrayType,
                        field: Field | None = None) -> bool:
        """All allocation sites of *array_type* use provably equal lengths.

        With *field*, the check follows the paper's per-field definition
        (§3.3: "fixed-length array type *w.r.t.* f"): only the allocation
        sites whose arrays flow into *field* must agree, so a type that
        varies globally can still be fixed for one field.

        Lengths are compared as affine expressions over the scope's input
        symbols; a single unknown (⊤) length makes the type variable.
        Arrays never allocated in this scope are fixed-length only if an
        outer phase vouches for them via *assume_fixed_length*.
        """
        if id(array_type) in self._assumed_fixed:
            return True
        facts = self.callgraph.facts
        if field is not None:
            field_sites = [site for site in facts.sites_for_field(field)
                           if site.array_type is array_type]
            if field_sites:
                return self._equal_lengths(field_sites)
        sites = facts.sites_for_type(array_type)
        if not sites:
            return False
        return self._equal_lengths(sites)

    @staticmethod
    def _equal_lengths(sites: Sequence[AllocationSite]) -> bool:
        first = sites[0].length
        if not isinstance(first, Affine):
            return False
        return all(site.length == first for site in sites)

    def is_init_only(self, field: Field) -> bool:
        """Init-only per §3.3, or vouched for by an outer phase."""
        if id(field) in self._assumed_init_only:
            return True
        return self.callgraph.is_init_only(field)

    def is_assumed_init_only(self, field: Field) -> bool:
        """Whether *field*'s init-only status rests on an outer phase's
        assumption rather than this scope's own code analysis."""
        return id(field) in self._assumed_init_only

    def is_assumed_fixed_length(self, array_type: ArrayType) -> bool:
        """Whether *array_type*'s fixed length is vouched for from outside
        this scope (no in-scope allocation-site proof)."""
        return id(array_type) in self._assumed_fixed


def _fields_of(target: DataType) -> tuple[Field, ...]:
    if isinstance(target, ClassType):
        return target.fields
    if isinstance(target, ArrayType):
        return (target.element_field,)
    return ()
