"""Bytecode-level closure analysis: purity, determinism and escape.

The lifetime analysis assumes the compiler sees *all* code that can touch
a record (§4), but the Python closures handed to ``map`` / ``filter`` /
``reduceByKey`` live outside the mini-IR.  This module recovers the
missing facts directly from CPython bytecode (:mod:`dis`), deriving for
every user UDF:

* a **capture graph** — free variables with their cell contents, captured
  globals, default-argument values, and *illegal* captures of engine
  handles (a ``DecaContext`` or an RDD inside a UDF ships the whole
  driver into the task);
* a **determinism verdict** — references to ``random`` / ``time`` /
  ``os.environ`` / ``id()`` / ``hash()`` and friends, plus iteration-order
  hazards from captured sets, found by a bounded walk into called and
  captured Python functions;
* a **purity verdict** — ``STORE_GLOBAL``, writes to captured cells,
  mutating method calls and attribute/subscript stores through captured
  objects;
* an **escape verdict** — whether argument records can outlive the call
  (pushed into captured containers, stored globally, or closed over by an
  inner function), which forces conservative handling of the record's
  page layout.

The scan is deliberately shallow: it pattern-matches instruction
sequences instead of running an abstract interpreter, so every hazard
names a concrete opcode and line, and anything the bounded walk cannot
resolve degrades the verdict to ``unknown`` rather than guessing.

Findings surface as the ``DECA2xx`` lint family (:mod:`repro.lint`), gate
retries and speculation through
:class:`repro.spark.closure_guard.ClosureGuard`, and are cross-checked at
runtime by the double-run differential shadow check.

This module must not import :mod:`repro.spark` at module level — the
spark layer imports :mod:`repro.analysis` first (engine-handle checks are
resolved lazily).
"""

from __future__ import annotations

import dis
import inspect
import re
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

# -- rule ids (the DECA2xx family; catalogued in repro.lint.findings) --------
RULE_ILLEGAL_CAPTURE = "DECA201"
RULE_NONDETERMINISM = "DECA202"
RULE_ITERATION_ORDER = "DECA203"
RULE_IMPURITY = "DECA204"
RULE_ESCAPE = "DECA205"
RULE_MUTABLE_CAPTURE = "DECA206"

CLOSURE_RULE_FAMILY = "DECA2"
# The pragma wildcard: ``# deca: allow(DECA2xx)`` suppresses the family.
FAMILY_WILDCARD = "DECA2xx"

DEFAULT_CALL_DEPTH = 4

# -- allowlists (judged by *name*; the scan never calls user code) -----------
_PURE_BUILTINS = frozenset((
    "abs", "all", "any", "ascii", "bin", "bool", "bytes", "callable",
    "chr", "complex", "dict", "divmod", "enumerate", "filter", "float",
    "format", "frozenset", "getattr", "hasattr", "hex", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "min", "next", "oct", "ord", "pow", "range", "repr", "reversed",
    "round", "set", "slice", "sorted", "str", "sum", "tuple", "type",
    "zip",
))

# Builtins whose result depends on interpreter state (address layout,
# PYTHONHASHSEED, the console) — calling one makes the UDF's output
# unreproducible across attempts.
_NONDET_BUILTINS = frozenset(("id", "hash", "input", "object"))

# Builtins that touch state outside the closure.
_IMPURE_BUILTINS = frozenset((
    "print", "open", "exec", "eval", "compile", "setattr", "delattr",
    "globals", "locals", "vars", "breakpoint", "__import__",
))

# Modules every function of which is deterministic and side-effect free
# for our purposes.
_DETERMINISTIC_MODULES = frozenset((
    "math", "cmath", "zlib", "bisect", "operator", "itertools",
    "functools", "heapq", "string", "re", "json", "struct",
    "collections", "array", "decimal", "fractions", "statistics",
    "hashlib", "binascii", "unicodedata", "typing", "dataclasses",
    "enum", "abc", "copy",
))

# Modules (or specific attributes of them) whose results vary between
# runs or attempts.  ``None`` marks the whole module nondeterministic.
_NONDET_MODULE_ATTRS: dict[str, Optional[frozenset[str]]] = {
    "random": None,
    "secrets": None,
    "uuid": None,
    "time": None,
    "socket": None,
    "threading": None,
    "multiprocessing": None,
    "asyncio": None,
    "datetime": frozenset(("now", "today", "utcnow")),
    "os": frozenset((
        "environ", "urandom", "getpid", "getppid", "times", "listdir",
        "scandir", "walk", "stat", "getcwd", "cpu_count", "getenv",
    )),
}

# Method names that mutate their receiver; a call through a captured
# object is a side effect, and pushing an argument in is an escape.
_MUTATING_METHODS = frozenset((
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
    "write", "writelines", "appendleft", "extendleft", "send", "put",
))

_MUTABLE_CONTAINER_TYPES = (list, dict, set, bytearray)

_LOAD_FAST_OPS = ("LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR")

_PRAGMA_RE = re.compile(r"#\s*deca:\s*allow\(([^)]*)\)")

_MISSING = object()


# -- result model ------------------------------------------------------------
@dataclass(frozen=True)
class Capture:
    """One value the closure carries in from outside its arguments."""

    name: str
    kind: str        # "cell" | "global" | "default"
    type_name: str
    mutable: bool
    illegal: bool = False

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "kind": self.kind,
                "type": self.type_name, "mutable": self.mutable,
                "illegal": self.illegal}


@dataclass(frozen=True)
class Hazard:
    """One suspicious fact, anchored at an opcode and source line."""

    rule_id: str
    reason: str
    opcode: str
    line: int
    via: tuple[str, ...] = ()   # call-graph path for recursed hazards

    def why(self, location: str) -> str:
        step = (f"[closure.dis] {self.opcode} at {location}:{self.line}: "
                f"{self.reason}")
        if self.via:
            step += " (via " + " -> ".join(self.via) + ")"
        return step


@dataclass(frozen=True)
class ClosureReport:
    """Everything the analyzer concluded about one UDF."""

    name: str
    qualname: str
    location: str
    line: int
    captures: tuple[Capture, ...]
    hazards: tuple[Hazard, ...]
    unresolved: tuple[str, ...]
    allowed: frozenset[str] = frozenset()

    @property
    def active_hazards(self) -> tuple[Hazard, ...]:
        """Hazards not suppressed by a ``# deca: allow(...)`` pragma."""
        if not self.allowed:
            return self.hazards
        if FAMILY_WILDCARD in self.allowed:
            return ()
        return tuple(h for h in self.hazards
                     if h.rule_id not in self.allowed)

    @property
    def suppressed_hazards(self) -> tuple[Hazard, ...]:
        active = set(map(id, self.active_hazards))
        return tuple(h for h in self.hazards if id(h) not in active)

    def _has(self, *rule_ids: str) -> bool:
        return any(h.rule_id in rule_ids for h in self.active_hazards)

    @property
    def determinism(self) -> str:
        """``deterministic`` | ``nondeterministic`` | ``unknown``."""
        if self._has(RULE_NONDETERMINISM, RULE_ITERATION_ORDER):
            return "nondeterministic"
        if self.unresolved:
            return "unknown"
        return "deterministic"

    @property
    def purity(self) -> str:
        """``pure`` | ``impure`` | ``unknown``."""
        if self._has(RULE_IMPURITY, RULE_ILLEGAL_CAPTURE):
            return "impure"
        if self.unresolved:
            return "unknown"
        return "pure"

    @property
    def escape(self) -> str:
        """``none`` | ``escapes`` | ``unknown``."""
        if self._has(RULE_ESCAPE):
            return "escapes"
        if self.unresolved:
            return "unknown"
        return "none"

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "location": self.location,
            "line": self.line,
            "captures": [c.to_dict() for c in self.captures],
            "hazards": [{"rule": h.rule_id, "reason": h.reason,
                         "opcode": h.opcode, "line": h.line,
                         "via": list(h.via)} for h in self.hazards],
            "unresolved": list(self.unresolved),
            "allowed": sorted(self.allowed),
            "determinism": self.determinism,
            "purity": self.purity,
            "escape": self.escape,
        }


# -- scan state --------------------------------------------------------------
@dataclass
class _Scan:
    """Mutable accumulator shared across the bounded call-graph walk."""

    captures: list[Capture] = field(default_factory=list)
    hazards: list[Hazard] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)
    visited: set[int] = field(default_factory=set)   # ids of code objects

    def hazard(self, rule_id: str, reason: str, opcode: str, line: int,
               via: tuple[str, ...]) -> None:
        self.hazards.append(Hazard(rule_id=rule_id, reason=reason,
                                   opcode=opcode, line=line, via=via))


@dataclass
class _Ref:
    """What the scanner believes the top-of-stack value refers to."""

    kind: str              # "global" | "cell" | "local" | "module" | "value"
    name: str              # dotted source-level chain
    value: Any = _MISSING


# -- helpers -----------------------------------------------------------------
def code_location(code: types.CodeType) -> str:
    """A stable, repo-relative location for *code* (byte-determinism)."""
    filename = code.co_filename.replace("\\", "/")
    for anchor in ("src/repro/", "tests/", "benchmarks/"):
        index = filename.find(anchor)
        if index >= 0:
            return filename[index:]
    if filename.startswith("<"):
        return filename
    return filename.rsplit("/", 1)[-1]


def _as_function(value: Any) -> Optional[types.FunctionType]:
    if isinstance(value, types.FunctionType):
        return value
    if isinstance(value, types.MethodType) and \
            isinstance(value.__func__, types.FunctionType):
        return value.__func__
    return None


def _is_engine_handle(value: Any) -> bool:
    """True for captured driver-side objects (DecaContext / RDD)."""
    module = type(value).__module__
    if not module.startswith("repro."):
        return False
    # Deferred import: the spark layer imports repro.analysis first.
    from ..spark.context import DecaContext
    from ..spark.rdd import RDD
    return isinstance(value, (DecaContext, RDD))


def _type_name(value: Any) -> str:
    return type(value).__name__


def _is_mutable(value: Any) -> bool:
    return isinstance(value, _MUTABLE_CONTAINER_TYPES)


def _module_attr_hazard(module: str, attr: str) -> Optional[str]:
    """A reason string when ``module.attr`` is a nondeterminism source."""
    root = module.split(".")[0]
    attrs = _NONDET_MODULE_ATTRS.get(root)
    if root in _NONDET_MODULE_ATTRS and (attrs is None or attr in attrs):
        return (f"references {module}.{attr} — its result varies between "
                "runs or task attempts")
    return None


def _pragma_allows(fn: types.FunctionType) -> frozenset[str]:
    """Rule ids suppressed by ``# deca: allow(...)`` pragmas in *fn*."""
    try:
        lines, _ = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return frozenset()   # exec'd / <string> functions have no source
    ids: set[str] = set()
    for line in lines:
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        for token in match.group(1).split(","):
            token = token.strip()
            if token:
                ids.add(token)
    return frozenset(ids)


def _cell_contents(fn: types.FunctionType) -> dict[str, Any]:
    cells: dict[str, Any] = {}
    closure = fn.__closure__ or ()
    for name, cell in zip(fn.__code__.co_freevars, closure):
        try:
            cells[name] = cell.cell_contents
        except ValueError:
            cells[name] = _MISSING   # still-empty cell (recursive defs)
    return cells


def _default_values(fn: types.FunctionType) -> dict[str, Any]:
    code = fn.__code__
    defaults: dict[str, Any] = {}
    positional = code.co_varnames[:code.co_argcount]
    for name, value in zip(positional[len(positional)
                                      - len(fn.__defaults__ or ()):],
                           fn.__defaults__ or ()):
        defaults[name] = value
    defaults.update(fn.__kwdefaults__ or {})
    return defaults


def _resolve_global(fn: types.FunctionType, name: str) -> Any:
    namespace = fn.__globals__
    if name in namespace:
        return namespace[name]
    builtins_ns = namespace.get("__builtins__")
    if isinstance(builtins_ns, dict):
        return builtins_ns.get(name, _MISSING)
    if builtins_ns is not None:
        return getattr(builtins_ns, name, _MISSING)
    return _MISSING


def _arg_names(code: types.CodeType) -> frozenset[str]:
    count = code.co_argcount + code.co_kwonlyargcount
    if code.co_flags & inspect.CO_VARARGS:
        count += 1
    if code.co_flags & inspect.CO_VARKEYWORDS:
        count += 1
    return frozenset(code.co_varnames[:count])


def _tainted_locals(instructions: list[dis.Instruction],
                    args: frozenset[str]) -> frozenset[str]:
    """Locals derived from arguments (two passes approximate a fixpoint).

    Covers the common shapes — ``y = x``, ``a, b = x`` and
    ``for v in x:`` — without a dataflow engine.
    """
    tainted = set(args)
    for _ in range(2):
        pending = False
        for index, instr in enumerate(instructions):
            if instr.opname in _LOAD_FAST_OPS and \
                    str(instr.argval) in tainted:
                pending = True
                continue
            if not pending:
                continue
            if instr.opname in ("UNPACK_SEQUENCE", "UNPACK_EX",
                                "GET_ITER", "FOR_ITER", "COPY", "SWAP"):
                continue   # taint flows through to the following stores
            if instr.opname == "STORE_FAST":
                tainted.add(str(instr.argval))
                # consecutive stores after an unpack stay tainted
                if index + 1 < len(instructions) and \
                        instructions[index + 1].opname == "STORE_FAST":
                    continue
            pending = False
    return frozenset(tainted)


# -- the scanner -------------------------------------------------------------
def _scan_function(fn: types.FunctionType, scan: _Scan, depth: int,
                   via: tuple[str, ...]) -> None:
    code = fn.__code__
    if id(code) in scan.visited:
        return
    scan.visited.add(id(code))

    cells = _cell_contents(fn)
    defaults = _default_values(fn)
    top_level = not via

    for name in sorted(cells):
        _inspect_capture(name, "cell", cells[name], fn, scan, depth, via,
                         record=top_level)
    for name in sorted(defaults):
        _inspect_capture(name, "default", defaults[name], fn, scan, depth,
                         via, record=top_level)

    _scan_code(code, fn, cells, scan, depth, via)


def _inspect_capture(name: str, kind: str, value: Any,
                     fn: types.FunctionType, scan: _Scan, depth: int,
                     via: tuple[str, ...], record: bool) -> None:
    """Classify one captured value; recurse into captured functions."""
    code = fn.__code__
    line = code.co_firstlineno
    if value is _MISSING:
        if record:
            scan.captures.append(Capture(name=name, kind=kind,
                                         type_name="<unbound>",
                                         mutable=False))
        return

    illegal = _is_engine_handle(value)
    if record:
        scan.captures.append(Capture(name=name, kind=kind,
                                     type_name=_type_name(value),
                                     mutable=_is_mutable(value),
                                     illegal=illegal))
    if illegal:
        scan.hazard(
            RULE_ILLEGAL_CAPTURE,
            f"captures live engine handle {name!r} "
            f"({_type_name(value)}) — UDFs must not carry the driver "
            "into tasks", "LOAD_DEREF" if kind == "cell" else "LOAD_CONST",
            line, via)
        return

    module = type(value).__module__
    if module == "random":
        scan.hazard(
            RULE_NONDETERMINISM,
            f"captures {name!r}, a random.{_type_name(value)} instance",
            "LOAD_DEREF" if kind == "cell" else "LOAD_CONST", line, via)
    if isinstance(value, (set, frozenset)):
        scan.hazard(
            RULE_ITERATION_ORDER,
            f"captures {_type_name(value)} {name!r}; iterating it is "
            "hash-order dependent across interpreter runs",
            "GET_ITER", line, via)
    if kind in ("global", "default") and _is_mutable(value):
        scan.hazard(
            RULE_MUTABLE_CAPTURE,
            f"captures mutable {_type_name(value)} {name!r} as a "
            f"{'module-level global' if kind == 'global' else 'default argument'}"
            " — shared state the retries of a task can observe mid-update",
            "LOAD_GLOBAL" if kind == "global" else "LOAD_CONST", line, via)

    child = _as_function(value)
    if child is not None:
        if depth <= 0:
            scan.unresolved.append(f"{name} (call depth exhausted)")
            return
        _scan_function(child, scan, depth - 1,
                       via + (getattr(child, "__qualname__",
                                      child.__name__),))


def _classify_global_load(name: str, fn: types.FunctionType, scan: _Scan,
                          depth: int, via: tuple[str, ...], line: int,
                          seen_globals: set[str]) -> _Ref:
    """Resolve a ``LOAD_GLOBAL``; emit hazards; return the stack ref."""
    value = _resolve_global(fn, name)

    if isinstance(value, types.ModuleType):
        return _Ref("module", value.__name__, value)

    if name in _NONDET_BUILTINS and (value is _MISSING
                                     or type(value).__module__ == "builtins"):
        scan.hazard(
            RULE_NONDETERMINISM,
            f"references builtin {name}() — the result depends on "
            "interpreter state (addresses / hash seed / console)",
            "LOAD_GLOBAL", line, via)
        return _Ref("value", name, value)
    if name in _IMPURE_BUILTINS and (value is _MISSING
                                     or type(value).__module__ == "builtins"):
        scan.hazard(
            RULE_IMPURITY,
            f"references builtin {name}() — a side effect outside the "
            "closure", "LOAD_GLOBAL", line, via)
        return _Ref("value", name, value)
    if name in _PURE_BUILTINS:
        return _Ref("value", name, value)

    if value is _MISSING:
        scan.unresolved.append(name)
        return _Ref("value", name, _MISSING)

    if _is_engine_handle(value):
        scan.hazard(
            RULE_ILLEGAL_CAPTURE,
            f"references live engine handle {name!r} "
            f"({_type_name(value)}) from module scope",
            "LOAD_GLOBAL", line, via)
        return _Ref("global", name, value)

    if isinstance(value, type):
        if issubclass(value, BaseException):
            return _Ref("value", name, value)
        # Instantiating an arbitrary class may do anything; stay honest.
        scan.unresolved.append(f"{name} (class)")
        return _Ref("value", name, value)

    child = _as_function(value)
    if child is not None:
        if depth <= 0:
            scan.unresolved.append(f"{name} (call depth exhausted)")
        else:
            _scan_function(child, scan, depth - 1,
                           via + (getattr(child, "__qualname__",
                                          child.__name__),))
        return _Ref("value", name, value)

    if callable(value):
        # A builtin from a known-deterministic module (e.g. an
        # ``operator`` function bound at module scope) is fine.
        owner = getattr(value, "__module__", "") or ""
        if owner.split(".")[0] in _DETERMINISTIC_MODULES:
            return _Ref("value", name, value)
        reason = _module_attr_hazard(owner.split(".")[0] or "<unknown>",
                                     getattr(value, "__name__", name))
        if reason is not None:
            scan.hazard(RULE_NONDETERMINISM, reason, "LOAD_GLOBAL",
                        line, via)
            return _Ref("value", name, value)
        scan.unresolved.append(name)
        return _Ref("value", name, value)

    # A plain data value captured from module scope.
    if name not in seen_globals:
        seen_globals.add(name)
        if not via:
            scan.captures.append(Capture(name=name, kind="global",
                                         type_name=_type_name(value),
                                         mutable=_is_mutable(value)))
        _inspect_capture(name, "global", value, fn, scan, depth, via,
                         record=False)
    return _Ref("global", name, value)


def _scan_code(code: types.CodeType, fn: types.FunctionType,
               cells: dict[str, Any], scan: _Scan, depth: int,
               via: tuple[str, ...]) -> None:
    """The instruction walk over one code object."""
    instructions = list(dis.get_instructions(code))
    args = _arg_names(code)
    tainted = _tainted_locals(instructions, args)
    imported: dict[str, str] = {}   # local name -> module it holds
    seen_globals: set[str] = set()
    arg_cells = frozenset(code.co_cellvars) & args

    def load_kind(index: int) -> tuple[str, str]:
        """(category, name) of the instruction at *index*, for lookbehind."""
        if index < 0:
            return "none", ""
        instr = instructions[index]
        name = str(instr.argval) if isinstance(instr.argval, str) else ""
        if instr.opname in _LOAD_FAST_OPS:
            return ("tainted" if name in tainted else "local"), name
        if instr.opname == "LOAD_DEREF" and name in cells:
            return "cell", name
        if instr.opname in ("LOAD_GLOBAL", "LOAD_NAME"):
            return "global", name
        return "other", name

    def window_has_taint(start: int) -> Optional[str]:
        """A tainted local loaded between *start* and the next CALL."""
        for j in range(start, min(start + 8, len(instructions))):
            op = instructions[j].opname
            if op in _LOAD_FAST_OPS and \
                    str(instructions[j].argval) in tainted:
                return str(instructions[j].argval)
            if op.startswith("CALL") or op.startswith("RETURN"):
                break
        return None

    line = code.co_firstlineno
    ref: Optional[_Ref] = None
    pending_import: Optional[str] = None

    for index, instr in enumerate(instructions):
        if instr.starts_line is not None:
            line = instr.starts_line
        op = instr.opname
        name = str(instr.argval) if isinstance(instr.argval, str) else ""

        if op in ("LOAD_GLOBAL", "LOAD_NAME"):
            ref = _classify_global_load(name, fn, scan, depth, via, line,
                                        seen_globals)
        elif op == "LOAD_DEREF":
            value = cells.get(name, _MISSING)
            if isinstance(value, types.ModuleType):
                ref = _Ref("module", value.__name__, value)
            else:
                ref = _Ref("cell", name, value)
        elif op in _LOAD_FAST_OPS:
            if name in imported:
                ref = _Ref("module", imported[name])
            else:
                ref = _Ref("local", name)
        elif op in ("LOAD_ATTR", "LOAD_METHOD"):
            ref = _handle_attr(ref, name, scan, via, line, op,
                               lambda: window_has_taint(index + 1))
        elif op == "IMPORT_NAME":
            pending_import = name
            ref = _Ref("module", name)
        elif op == "IMPORT_FROM":
            if ref is not None and ref.kind == "module":
                reason = _module_attr_hazard(ref.name, name)
                if reason is not None:
                    scan.hazard(RULE_NONDETERMINISM, reason, op, line,
                                via)
        elif op == "STORE_FAST":
            if pending_import is not None:
                imported[name] = pending_import
                pending_import = None
            ref = None
        elif op in ("STORE_GLOBAL", "DELETE_GLOBAL"):
            scan.hazard(
                RULE_IMPURITY,
                f"writes module-level global {name!r}",
                op, line, via)
            kind, _ = load_kind(index - 1)
            if kind == "tainted":
                scan.hazard(
                    RULE_ESCAPE,
                    f"stores an argument-derived value into global "
                    f"{name!r}; the record outlives the call",
                    op, line, via)
            ref = None
        elif op == "STORE_DEREF":
            if name in code.co_freevars:
                scan.hazard(
                    RULE_IMPURITY,
                    f"rebinds captured cell {name!r} (nonlocal write)",
                    op, line, via)
                kind, _ = load_kind(index - 1)
                if kind == "tainted":
                    scan.hazard(
                        RULE_ESCAPE,
                        f"stores an argument-derived value into captured "
                        f"cell {name!r}", op, line, via)
            ref = None
        elif op == "STORE_ATTR":
            kind, target = load_kind(index - 1)
            if kind in ("cell", "global"):
                scan.hazard(
                    RULE_IMPURITY,
                    f"writes attribute .{name} of captured object "
                    f"{target!r}", op, line, via)
                prev_kind, _ = load_kind(index - 2)
                if prev_kind == "tainted":
                    scan.hazard(
                        RULE_ESCAPE,
                        f"stores an argument-derived value into "
                        f"{target}.{name}; the record outlives the call",
                        op, line, via)
            elif kind == "tainted":
                scan.hazard(
                    RULE_IMPURITY,
                    f"writes attribute .{name} of its input record "
                    f"({target!r})", op, line, via)
            ref = None
        elif op in ("STORE_SUBSCR", "DELETE_SUBSCR", "STORE_SLICE"):
            container_kind, target = load_kind(index - 2)
            key_kind, key_target = load_kind(index - 1)
            if container_kind not in ("cell", "global") and \
                    key_kind in ("cell", "global"):
                container_kind, target = key_kind, key_target
            if container_kind in ("cell", "global"):
                scan.hazard(
                    RULE_IMPURITY,
                    f"writes through subscript of captured object "
                    f"{target!r}", op, line, via)
                value_kind, _ = load_kind(index - 3)
                if value_kind == "tainted":
                    scan.hazard(
                        RULE_ESCAPE,
                        f"stores an argument-derived value into captured "
                        f"container {target!r}", op, line, via)
            elif container_kind == "tainted":
                scan.hazard(
                    RULE_IMPURITY,
                    f"writes through subscript of its input record "
                    f"({target!r})", op, line, via)
            ref = None
        elif op == "MAKE_FUNCTION":
            inner = _nearest_code_const(instructions, index)
            if inner is not None:
                # Comprehensions/genexprs are consumed inline — closing
                # over an argument there is not an escape.
                inline = inner.co_name in ("<genexpr>", "<listcomp>",
                                           "<setcomp>", "<dictcomp>")
                escaping = frozenset(inner.co_freevars) & (tainted
                                                           | arg_cells)
                if escaping and not inline:
                    scan.hazard(
                        RULE_ESCAPE,
                        "an inner function closes over argument-derived "
                        f"value(s) {sorted(escaping)}; records escape "
                        "inside the returned closure",
                        op, line, via)
                _scan_code(inner, fn, {}, scan, depth, via
                           + (f"<inner:{inner.co_name}>",))
            ref = None
        elif op.startswith("CALL") or op in ("POP_TOP", "RETURN_VALUE"):
            ref = None
        # every other opcode leaves the tracked ref untouched


def _handle_attr(ref: Optional[_Ref], attr: str, scan: _Scan,
                 via: tuple[str, ...], line: int, op: str,
                 taint_probe: Callable[[], Optional[str]]
                 ) -> Optional[_Ref]:
    """One attribute/method access through the tracked reference."""
    if ref is None:
        return None
    if ref.kind == "module":
        reason = _module_attr_hazard(ref.name, attr)
        if reason is not None:
            scan.hazard(RULE_NONDETERMINISM, reason, op, line, via)
            return _Ref("value", f"{ref.name}.{attr}")
        root = ref.name.split(".")[0]
        child: Any = _MISSING
        if isinstance(ref.value, types.ModuleType):
            child = getattr(ref.value, attr, _MISSING)
        if isinstance(child, types.ModuleType):
            return _Ref("module", child.__name__, child)
        if root not in _DETERMINISTIC_MODULES and \
                root not in _NONDET_MODULE_ATTRS:
            scan.unresolved.append(f"{ref.name}.{attr}")
        return _Ref("value", f"{ref.name}.{attr}", child)

    if ref.kind in ("cell", "global"):
        if ref.value is not _MISSING and \
                type(ref.value).__module__ == "random":
            scan.hazard(
                RULE_NONDETERMINISM,
                f"calls .{attr}() on captured random instance "
                f"{ref.name!r}", op, line, via)
            return _Ref("value", f"{ref.name}.{attr}")
        if attr in _MUTATING_METHODS:
            scan.hazard(
                RULE_IMPURITY,
                f"calls mutating method .{attr}() on captured "
                f"{_type_name(ref.value) if ref.value is not _MISSING else 'object'} "
                f"{ref.name!r}", op, line, via)
            tainted_arg = taint_probe()
            if tainted_arg is not None:
                scan.hazard(
                    RULE_ESCAPE,
                    f"pushes argument-derived value {tainted_arg!r} into "
                    f"captured container {ref.name!r} via .{attr}(); the "
                    "record outlives the call", op, line, via)
        return _Ref("value", f"{ref.name}.{attr}")

    if ref.kind == "local" or ref.kind == "tainted":
        # Methods on locals/arguments: judged by name only.  A mutating
        # call on an *argument* mutates the input record.
        return _Ref("value", f"{ref.name}.{attr}")
    return _Ref("value", f"{ref.name}.{attr}")


def _nearest_code_const(instructions: list[dis.Instruction],
                        index: int) -> Optional[types.CodeType]:
    for j in range(index - 1, max(-1, index - 4), -1):
        candidate = instructions[j].argval
        if isinstance(candidate, types.CodeType):
            return candidate
    return None


# -- entry points ------------------------------------------------------------
def analyze_closure(fn: Callable[..., Any], *,
                    max_depth: int = DEFAULT_CALL_DEPTH) -> ClosureReport:
    """Analyze one Python UDF; see the module docstring for the model."""
    function = _as_function(fn)
    if function is None:
        raise TypeError(f"analyze_closure needs a Python function, "
                        f"got {type(fn).__name__}")
    scan = _Scan()
    _scan_function(function, scan, max_depth, ())
    code = function.__code__

    # Mutating methods called on *arguments* are impurity too; they are
    # detected in the attr handler via the local-taint path below.
    _flag_argument_mutations(function, scan)

    return ClosureReport(
        name=function.__name__,
        qualname=function.__qualname__,
        location=code_location(code),
        line=code.co_firstlineno,
        captures=tuple(sorted(scan.captures,
                              key=lambda c: (c.kind, c.name))),
        hazards=_dedupe_hazards(scan.hazards),
        unresolved=tuple(sorted(set(scan.unresolved))),
        allowed=_pragma_allows(function),
    )


def _flag_argument_mutations(fn: types.FunctionType, scan: _Scan) -> None:
    """``arg.append(...)``-style writes mutate the input record."""
    code = fn.__code__
    instructions = list(dis.get_instructions(code))
    args = _arg_names(code)
    tainted = _tainted_locals(instructions, args)
    line = code.co_firstlineno
    for index, instr in enumerate(instructions):
        if instr.starts_line is not None:
            line = instr.starts_line
        if instr.opname not in ("LOAD_ATTR", "LOAD_METHOD"):
            continue
        attr = str(instr.argval)
        if attr not in _MUTATING_METHODS:
            continue
        prev = instructions[index - 1] if index else None
        if prev is not None and prev.opname in _LOAD_FAST_OPS and \
                str(prev.argval) in tainted:
            scan.hazard(
                RULE_IMPURITY,
                f"calls mutating method .{attr}() on argument-derived "
                f"local {prev.argval!r} — the input record is modified "
                "in place", instr.opname, line, ())


def _dedupe_hazards(hazards: list[Hazard]) -> tuple[Hazard, ...]:
    seen: set[tuple[str, str, str, int, tuple[str, ...]]] = set()
    unique: list[Hazard] = []
    for hazard in hazards:
        key = (hazard.rule_id, hazard.reason, hazard.opcode, hazard.line,
               hazard.via)
        if key in seen:
            continue
        seen.add(key)
        unique.append(hazard)
    return tuple(sorted(unique,
                        key=lambda h: (h.rule_id, h.line, h.reason)))


def analyze_value(value: Any, *,
                  max_depth: int = DEFAULT_CALL_DEPTH
                  ) -> Optional[ClosureReport]:
    """Analyze any callable the engine was handed.

    Python functions get the full scan; allowlisted C builtins (``min``
    as a merge function, ``operator.add``, ...) get a clean synthetic
    report; anything else callable is honest about being unanalyzable.
    Returns ``None`` for non-callables.
    """
    function = _as_function(value)
    if function is not None:
        return analyze_closure(function, max_depth=max_depth)
    if not callable(value):
        return None
    name = getattr(value, "__name__", type(value).__name__)
    owner = (getattr(value, "__module__", "") or "").split(".")[0]
    clean = (name in _PURE_BUILTINS and owner in ("builtins", "")) \
        or owner in _DETERMINISTIC_MODULES
    return ClosureReport(
        name=name, qualname=name, location="<builtin>", line=0,
        captures=(), hazards=(),
        unresolved=() if clean else (f"{name} (not a Python function)",),
        allowed=frozenset(),
    )


def iter_hazard_rules(report: ClosureReport) -> Iterator[str]:
    """The distinct active rule ids of *report*, sorted."""
    yield from sorted({h.rule_id for h in report.active_hazards})
