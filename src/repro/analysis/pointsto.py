"""Object-to-container points-to binding and ownership (paper §4.3).

Deca maps every object creation site to the data containers that may hold
references to its objects, then assigns each site a single **primary**
container (the owner of the bytes) and zero or more **secondary** containers
(which hold pointers or shared page-infos).  The paper's ownership rules:

1. cached RDDs and shuffle buffers outrank UDF variables (longer expected
   lifetimes);
2. among several high-priority containers in the same stage, the one
   created first owns the objects.

In the original system this mapping comes from a points-to analysis over
bytecode; here the mini-engine's logical plan provides the creation sites
and candidate containers directly (each RDD knows whether its output is
cached, shuffled or consumed by the next operator), and this module applies
the ownership rules to them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Iterable

from ..errors import AnalysisError
from .udt import DataType


class ContainerKind(enum.Enum):
    """The three kinds of data containers in Spark (§4.2)."""

    UDF_VARIABLES = "udf-variables"
    CACHE_BLOCK = "cache-block"
    SHUFFLE_BUFFER = "shuffle-buffer"

    @property
    def priority(self) -> int:
        """Ownership priority: higher outranks lower (§4.3 rule 1)."""
        if self is ContainerKind.UDF_VARIABLES:
            return 0
        return 1


@dataclass(frozen=True)
class ContainerRef:
    """A container occurrence within one job stage.

    *creation_order* is the position at which the stage's execution creates
    the container, used by ownership rule 2.
    """

    kind: ContainerKind
    name: str
    stage_id: int
    creation_order: int


@dataclass(frozen=True)
class CreationSite:
    """A point in the program that creates objects of one UDT."""

    name: str
    udt: DataType
    stage_id: int


@dataclass(frozen=True)
class Ownership:
    """The resolved primary/secondary split for one creation site."""

    site: CreationSite
    primary: ContainerRef
    secondaries: tuple[ContainerRef, ...] = ()

    @property
    def all_containers(self) -> tuple[ContainerRef, ...]:
        return (self.primary, *self.secondaries)


@dataclass
class PointsToBinding:
    """The raw points-to result: which containers may hold a site's objects."""

    site: CreationSite
    containers: list[ContainerRef] = dc_field(default_factory=list)

    def bind(self, container: ContainerRef) -> None:
        self.containers.append(container)


def assign_ownership(binding: PointsToBinding) -> Ownership:
    """Apply the paper's two ownership rules to one binding."""
    if not binding.containers:
        raise AnalysisError(
            f"creation site {binding.site.name!r} is bound to no container")
    ranked = sorted(
        binding.containers,
        key=lambda c: (-c.kind.priority, c.stage_id, c.creation_order))
    primary = ranked[0]
    secondaries = tuple(c for c in ranked[1:])
    return Ownership(site=binding.site, primary=primary,
                     secondaries=secondaries)


def assign_all(bindings: Iterable[PointsToBinding]) -> list[Ownership]:
    """Resolve ownership for every binding."""
    return [assign_ownership(b) for b in bindings]
