"""The annotated UDT model (paper §3.1–§3.2).

Applications describe their user-defined types with this model, mirroring
what Deca's pre-processing phase extracts from Scala bytecode: each class has
*fields*; each field has a declared type, a ``final`` flag (Scala ``val`` vs
``var``) and a **type-set** — the set of runtime types that may actually be
assigned to it, as computed by points-to analysis.  Arrays are modelled with
an implicit *element field* (never final, never init-only) plus a length,
exactly as Algorithm 1 treats them.

Example — the paper's running LR example (Fig. 1/Fig. 3)::

    data = Field("data", ArrayType(DOUBLE), final=True)
    dense_vector = ClassType("DenseVector", [
        data,
        Field("offset", INT), Field("stride", INT), Field("length", INT),
    ])
    features = Field("features", vector, type_set=(dense_vector,))
    labeled_point = ClassType("LabeledPoint", [
        Field("label", DOUBLE), features,
    ])
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import TypeGraphError
from ..jvm import sizing


class DataType:
    """Base class of every type in the model."""

    name: str

    @property
    def is_primitive(self) -> bool:
        return isinstance(self, PrimitiveType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def __repr__(self) -> str:
        return self.name


class PrimitiveType(DataType):
    """A JVM primitive (``int``, ``double``, ...)."""

    __slots__ = ("name", "nbytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.nbytes = sizing.primitive_bytes(name)


BOOLEAN = PrimitiveType("boolean")
BYTE = PrimitiveType("byte")
CHAR = PrimitiveType("char")
SHORT = PrimitiveType("short")
INT = PrimitiveType("int")
FLOAT = PrimitiveType("float")
LONG = PrimitiveType("long")
DOUBLE = PrimitiveType("double")

PRIMITIVES: tuple[PrimitiveType, ...] = (
    BOOLEAN, BYTE, CHAR, SHORT, INT, FLOAT, LONG, DOUBLE,
)


class Field:
    """One instance field of a UDT.

    *type_set* lists the runtime types that may be assigned to the field; it
    defaults to the declared type alone.  ``final`` mirrors Scala's ``val``:
    a final field is assigned exactly once, in the constructor, which the
    local classifier exploits (Algorithm 1, lines 28–30).
    """

    __slots__ = ("name", "declared_type", "type_set", "final")

    def __init__(self, name: str, declared_type: DataType,
                 type_set: Sequence[DataType] | None = None,
                 final: bool = False) -> None:
        if not name:
            raise TypeGraphError("field name cannot be empty")
        self.name = name
        self.declared_type = declared_type
        if type_set is None:
            resolved: tuple[DataType, ...] = (declared_type,)
        else:
            resolved = tuple(type_set)
            if not resolved:
                raise TypeGraphError(
                    f"field {name!r} has an empty type-set")
        self.type_set = resolved
        self.final = final

    def get_type_set(self) -> tuple[DataType, ...]:
        """The possible runtime types of this field (paper: ``getTypeSet``)."""
        return self.type_set

    def __repr__(self) -> str:
        modifier = "val" if self.final else "var"
        return f"Field({modifier} {self.name}: {self.declared_type.name})"


class ClassType(DataType):
    """A user-defined class with named fields.

    Fields may be supplied at construction or added later with
    :meth:`add_field`, which allows building recursively-defined types
    (a ``Node`` whose ``next`` field is a ``Node``).
    """

    def __init__(self, name: str,
                 fields: Iterable[Field] | None = None) -> None:
        if not name:
            raise TypeGraphError("class name cannot be empty")
        self.name = name
        self._fields: list[Field] = []
        self._by_name: dict[str, Field] = {}
        for field in fields or ():
            self.add_field(field)

    def add_field(self, field: Field) -> Field:
        """Append *field*; names must be unique within the class."""
        if field.name in self._by_name:
            raise TypeGraphError(
                f"duplicate field {field.name!r} in class {self.name!r}")
        self._fields.append(field)
        self._by_name[field.name] = field
        return field

    @property
    def fields(self) -> tuple[Field, ...]:
        return tuple(self._fields)

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise TypeGraphError(
                f"class {self.name!r} has no field {name!r}") from None

    @property
    def primitive_payload_bytes(self) -> int:
        """Summed size of this class's own primitive fields."""
        return sum(f.declared_type.nbytes for f in self._fields
                   if isinstance(f.declared_type, PrimitiveType))

    @property
    def reference_field_count(self) -> int:
        """Number of this class's own reference-typed fields."""
        return sum(1 for f in self._fields
                   if not isinstance(f.declared_type, PrimitiveType))

    @property
    def shallow_object_bytes(self) -> int:
        """JVM footprint of one instance, excluding referenced objects."""
        return sizing.object_bytes(self.reference_field_count,
                                   self.primitive_payload_bytes)


class ArrayType(DataType):
    """An array type ``Array[T]``.

    Modelled as having a length plus an *element field* whose type-set is
    the set of runtime types its elements may hold.  The element field is
    never final: Algorithm 1 therefore classifies arrays of SFST elements as
    RFSTs (same data-size for one instance, different across instances), and
    the global analysis never treats element fields as init-only (§3.3,
    footnote 1).
    """

    def __init__(self, element_type: DataType,
                 element_type_set: Sequence[DataType] | None = None) -> None:
        self.element_type = element_type
        self.name = f"Array[{element_type.name}]"
        self.element_field = Field(
            "<element>", element_type, type_set=element_type_set, final=False)

    @property
    def element_bytes(self) -> int:
        """Per-slot size in the *object* representation."""
        if isinstance(self.element_type, PrimitiveType):
            return self.element_type.nbytes
        return sizing.REFERENCE_BYTES


def referenced_types(data_type: DataType) -> Iterator[DataType]:
    """Yield every type reachable in one hop from *data_type*'s fields."""
    if isinstance(data_type, ClassType):
        for field in data_type.fields:
            yield from field.get_type_set()
    elif isinstance(data_type, ArrayType):
        yield from data_type.element_field.get_type_set()


def type_dependency_cycle(root: DataType) -> list[DataType] | None:
    """Return one cycle in the type-dependency graph of *root*, if any.

    The local classifier uses this to detect recursively-defined types
    (Algorithm 1, lines 1–2).  Primitives terminate recursion.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    colors: dict[int, int] = {}
    stack: list[DataType] = []

    def visit(node: DataType) -> list[DataType] | None:
        if isinstance(node, PrimitiveType):
            return None
        state = colors.get(id(node), WHITE)
        if state == GRAY:
            start = next(i for i, t in enumerate(stack) if t is node)
            return stack[start:] + [node]
        if state == BLACK:
            return None
        colors[id(node)] = GRAY
        stack.append(node)
        for child in referenced_types(node):
            cycle = visit(child)
            if cycle is not None:
                return cycle
        stack.pop()
        colors[id(node)] = BLACK
        return None

    return visit(root)


def walk_types(root: DataType) -> Iterator[DataType]:
    """Yield every distinct type reachable from *root* (root included)."""
    seen: set[int] = set()
    pending = [root]
    while pending:
        node = pending.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        pending.extend(referenced_types(node))
