"""Call-graph construction over the mini-IR (paper §3.3, §5).

Deca's pre-processing phase builds a per-stage call graph whose entry node
is the stage's main method; every method reachable through calls and
constructor invocations belongs to the analysis scope.  On top of the graph
this module implements the *syntactic* facts the global classifier needs:

* which fields are stored outside the constructors of their declaring class;
* the maximum number of stores to a field along any single constructor
  calling sequence (``this(...)``-delegation chains included);
* the init-only decision of §3.3 (final ⇒ init-only; array element fields ⇒
  never; otherwise only-in-constructors and at-most-once-per-sequence);

and it runs the :class:`~repro.analysis.symconst.SymbolicInterpreter` from
the entry method to obtain the allocation-site facts used for fixed-length
array detection.
"""

from __future__ import annotations

from typing import Iterable

from .ir import (
    Call,
    If,
    Loop,
    Method,
    NewObject,
    Stmt,
    StoreField,
    statements_recursive,
)
from .symconst import Affine, ScopeFacts, SymbolicInterpreter
from .udt import ClassType, DataType, Field, walk_types

# Effectively-infinite store count for "assigned inside a loop".
MANY = 1 << 30


class CallGraph:
    """The per-scope call graph plus derived field-assignment facts."""

    def __init__(self, entry: Method, methods: set[Method],
                 classes: dict[int, ClassType]) -> None:
        self.entry = entry
        self.methods = methods
        self._classes = classes
        self._field_owner: dict[int, ClassType] = {}
        for cls in classes.values():
            for field in cls.fields:
                self._field_owner[id(field)] = cls
        self._facts: ScopeFacts | None = None

    # -- construction ------------------------------------------------------------
    @classmethod
    def build(cls, entry: Method,
              known_types: Iterable[DataType] = ()) -> "CallGraph":
        """Build the scope reachable from *entry*.

        *known_types* seeds the class universe with types that appear in the
        data flow but not in any statement (e.g. types only read from a
        cached RDD).
        """
        methods: set[Method] = set()
        classes: dict[int, ClassType] = {}

        def note_type(data_type: DataType) -> None:
            for node in walk_types(data_type):
                if isinstance(node, ClassType):
                    classes.setdefault(id(node), node)

        for seed in known_types:
            note_type(seed)

        pending = [entry]
        while pending:
            method = pending.pop()
            if method in methods:
                continue
            methods.add(method)
            if method.owner is not None:
                note_type(method.owner)
            for stmt in statements_recursive(method.body):
                if isinstance(stmt, Call):
                    pending.append(stmt.method)
                elif isinstance(stmt, NewObject):
                    note_type(stmt.cls)
                    if stmt.ctor is not None:
                        pending.append(stmt.ctor)
        return cls(entry, methods, classes)

    # -- symbolic facts -------------------------------------------------------------
    @property
    def facts(self) -> ScopeFacts:
        """Allocation-site facts from symbolically interpreting the entry.

        Entry parameters become fresh symbols: they are values arriving from
        outside the scope (Fig. 4).
        """
        if self._facts is None:
            interpreter = SymbolicInterpreter()
            args = {param: Affine.symbol(f"arg:{param}")
                    for param in self.entry.params}
            self._facts = interpreter.run(self.entry, args)
        return self._facts

    # -- field-store facts ------------------------------------------------------------
    def field_owner(self, field: Field) -> ClassType | None:
        """The class declaring *field*, if it is in the scope's universe."""
        owner = self._field_owner.get(id(field))
        if owner is not None:
            return owner
        return _declaring_class(field, self._classes)

    def stores_outside_constructors(self, field: Field) -> bool:
        """True if any non-constructor method in scope assigns *field*.

        A store inside a constructor of a *different* class also counts:
        only the declaring class's constructors may initialize the field
        for it to remain init-only.
        """
        owner = self.field_owner(field)
        for method in self.methods:
            is_own_ctor = (method.is_constructor and owner is not None
                           and method.owner is owner)
            for stmt in statements_recursive(method.body):
                if isinstance(stmt, StoreField) and stmt.field is field:
                    if not is_own_ctor:
                        return True
        return False

    def max_stores_per_constructor_sequence(self, field: Field) -> int:
        """Max stores to *field* along one constructor calling sequence.

        A "sequence" is a constructor plus the chain of same-class
        constructors it delegates to via ``this(...)`` calls.  Stores inside
        loops count as :data:`MANY`.
        """
        owner = self.field_owner(field)
        if owner is None:
            return 0
        best = 0
        for method in self.methods:
            if method.is_constructor and method.owner is owner:
                best = max(best, self._stores_in_sequence(method, field,
                                                          visited=set()))
        return best

    def _stores_in_sequence(self, ctor: Method, field: Field,
                            visited: set[int]) -> int:
        if id(ctor) in visited:
            return 0  # delegation cycle: already counted
        visited.add(id(ctor))
        return self._count_stores(ctor.body, ctor, field, visited)

    def _count_stores(self, body: tuple[Stmt, ...], ctor: Method,
                      field: Field, visited: set[int]) -> int:
        count = 0
        for stmt in body:
            if isinstance(stmt, StoreField) and stmt.field is field:
                count += 1
            elif isinstance(stmt, If):
                count += max(
                    self._count_stores(stmt.then_body, ctor, field, visited),
                    self._count_stores(stmt.else_body, ctor, field, visited))
            elif isinstance(stmt, Loop):
                inner = self._count_stores(stmt.body, ctor, field, visited)
                if inner:
                    count += MANY
            elif isinstance(stmt, Call):
                if (stmt.receiver == "this" and stmt.method.is_constructor
                        and stmt.method.owner is ctor.owner):
                    count += self._stores_in_sequence(stmt.method, field,
                                                      visited)
        return count

    # -- the init-only rule (§3.3) -----------------------------------------------
    def is_init_only(self, field: Field) -> bool:
        """Decide init-only-ness of *field* per the paper's three rules.

        1. a final field is init-only;
        2. an array element field is never init-only;
        3. otherwise the field must not be assigned outside its class's
           constructors and at most once per constructor calling sequence.
        """
        if field.name == "<element>":
            return False
        if field.final:
            return True
        if self.stores_outside_constructors(field):
            return False
        return self.max_stores_per_constructor_sequence(field) <= 1

    def __repr__(self) -> str:
        return (f"CallGraph(entry={self.entry.qualified_name}, "
                f"methods={len(self.methods)})")


def _declaring_class(field: Field,
                     classes: dict[int, ClassType]) -> ClassType | None:
    for cls in classes.values():
        if any(f is field for f in cls.fields):
            return cls
    return None
