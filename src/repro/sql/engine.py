"""The mini SQL engine: filter and GroupBy-aggregate over columnar tables.

Covers exactly the two exploratory queries of §6.6::

    SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100;

    SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue)
    FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5);

expressed through a small structured-query API (:func:`select` /
:func:`groupby_sum`).  Execution is columnar: predicates scan the packed
column bytes directly, and aggregation buffers hold primitive sums — the
Tungsten-style serialized aggregation that keeps Spark SQL's GC time at
zero in Table 6.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..config import DecaConfig
from ..errors import SqlError
from ..jvm.heap import SimHeap
from ..jvm.objects import Lifetime
from ..simtime import SimClock
from .columnar import ColumnarTable, _StringColumn
from .schema import ColumnType, TableSchema

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Filter:
    """``WHERE column <op> literal``."""

    column: str
    op: str
    literal: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SqlError(f"unsupported operator {self.op!r}")


_AGGREGATE_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregation:
    """``SELECT <key expr>, <func>(value) ... GROUP BY <key expr>``.

    *key_prefix* of ``None`` groups by the whole key column; *func* is one
    of SUM/COUNT/AVG/MIN/MAX (the aggregates Tungsten serializes, §7).
    """

    key_column: str
    value_column: str
    key_prefix: int | None = None
    func: str = "SUM"

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATE_FUNCS:
            raise SqlError(f"unsupported aggregate {self.func!r}; "
                           f"choose from {_AGGREGATE_FUNCS}")


@dataclass(frozen=True)
class Query:
    """One supported query shape against one table."""

    table: str
    projection: tuple[str, ...] = ()
    where: Filter | None = None
    aggregation: Aggregation | None = None

    def __post_init__(self) -> None:
        if self.aggregation is None and not self.projection:
            raise SqlError("a non-aggregate query needs a projection")


def select(columns: Sequence[str], table: str,
           where: tuple[str, str, Any] | None = None) -> Query:
    """Build a projection/filter query (§6.6 Query 1 shape)."""
    condition = Filter(*where) if where is not None else None
    return Query(table=table, projection=tuple(columns), where=condition)


def groupby_sum(table: str, key_column: str, value_column: str,
                key_prefix: int | None = None) -> Query:
    """Build a GroupBy-SUM query (§6.6 Query 2 shape)."""
    return Query(table=table,
                 aggregation=Aggregation(key_column, value_column,
                                         key_prefix))


def groupby_agg(table: str, func: str, key_column: str,
                value_column: str,
                key_prefix: int | None = None) -> Query:
    """Build a GroupBy query with any supported aggregate function."""
    return Query(table=table,
                 aggregation=Aggregation(key_column, value_column,
                                         key_prefix, func=func))


@dataclass
class QueryResult:
    """Rows plus the costs the engine charged."""

    rows: list[tuple]
    wall_ms: float
    gc_pause_ms: float
    cached_bytes: int


class SqlEngine:
    """The Spark SQL stand-in: columnar cache + two physical operators."""

    def __init__(self, config: DecaConfig | None = None) -> None:
        self.config = config or DecaConfig()
        self.clock = SimClock()
        self.heap = SimHeap(self.config, self.clock, "sql-engine")
        self._tables: dict[str, tuple[TableSchema, list]] = {}
        self._cached: dict[str, ColumnarTable] = {}

    # -- catalog --------------------------------------------------------------
    def register_table(self, name: str, schema: TableSchema,
                       rows: Sequence[Sequence[Any]]) -> None:
        if name in self._tables:
            raise SqlError(f"table {name!r} already registered")
        self._tables[name] = (schema, list(rows))

    def cache_table(self, name: str) -> ColumnarTable:
        """Materialize a table into the columnar in-memory cache."""
        schema, rows = self._lookup(name)
        if name in self._cached:
            return self._cached[name]
        cpu = self.config.cpu
        # Column-wise encoding cost: one pass over every cell.
        self.clock.advance(
            cpu.record_op_ms * len(rows) * len(schema.columns) * 0.25)
        table = ColumnarTable(schema, rows, heap=self.heap)
        self._cached[name] = table
        return table

    def uncache_table(self, name: str) -> None:
        table = self._cached.pop(name, None)
        if table is not None:
            table.release()

    def _lookup(self, name: str) -> tuple[TableSchema, list]:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"unknown table {name!r}") from None

    @property
    def cached_bytes(self) -> int:
        return sum(t.memory_bytes for t in self._cached.values())

    def sql(self, statement: str) -> QueryResult:
        """Parse and run a SQL statement (the §6.6 dialect)."""
        from .parser import parse
        return self.run(parse(statement))

    # -- execution --------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        schema, _ = self._lookup(query.table)
        table = self.cache_table(query.table)
        start_ms = self.clock.now_ms
        gc_start = self.heap.stats.pause_ms
        if query.aggregation is not None:
            rows = self._run_aggregate(table, query.aggregation)
        else:
            rows = self._run_scan(table, query)
        return QueryResult(
            rows=rows,
            wall_ms=self.clock.now_ms - start_ms,
            gc_pause_ms=self.heap.stats.pause_ms - gc_start,
            cached_bytes=self.cached_bytes,
        )

    def _run_scan(self, table: ColumnarTable, query: Query) -> list[tuple]:
        cpu = self.config.cpu
        count = table.row_count
        matches: list[int]
        if query.where is not None:
            condition = query.where
            column = table.column(condition.column)
            op = _OPS[condition.op]
            literal = condition.literal
            # A tight scan over one packed column.
            self.clock.advance(cpu.page_access_ms * count)
            matches = [row for row, value in enumerate(column.values())
                       if op(value, literal)]
        else:
            matches = list(range(count))
        projected = [table.column(name) for name in query.projection]
        self.clock.advance(cpu.page_access_ms * len(matches)
                           * max(1, len(projected)))
        # Result rows are short-lived driver objects.
        temp = self.heap.new_group("sql-result", Lifetime.TEMPORARY)
        self.heap.allocate(temp, len(matches), 48 * max(1, len(matches)))
        out = [tuple(col.get(row) for col in projected) for row in matches]
        self.heap.free_group(temp)
        return out

    def _run_aggregate(self, table: ColumnarTable,
                       agg: Aggregation) -> list[tuple]:
        cpu = self.config.cpu
        key_col = table.column(agg.key_column)
        value_col = table.column(agg.value_column)
        key_type = table.schema.column(agg.key_column).ctype
        if agg.key_prefix is not None \
                and key_type is not ColumnType.STRING:
            raise SqlError("SUBSTR needs a string column")
        # One pass over the two columns; the aggregation buffer holds
        # primitive accumulators (Tungsten-style), not boxed objects.
        count = table.row_count
        self.clock.advance((cpu.page_access_ms * 2 + cpu.hash_probe_ms)
                           * count)
        buffer_group = self.heap.new_group("sql-agg-buffer",
                                           Lifetime.PINNED)
        # Accumulators: (sum, count) pairs cover every supported function.
        acc: dict[Any, list] = {}
        for row in range(count):
            if agg.key_prefix is not None:
                assert isinstance(key_col, _StringColumn)
                key = key_col.get_prefix(row, agg.key_prefix)
            else:
                key = key_col.get(row)
            value = value_col.get(row)
            slot = acc.get(key)
            if slot is None:
                acc[key] = [value, 1, value, value]
                self.heap.allocate(buffer_group, 1, 56)
            else:
                slot[0] += value
                slot[1] += 1
                if value < slot[2]:
                    slot[2] = value
                if value > slot[3]:
                    slot[3] = value
        self.heap.free_group(buffer_group)
        out = []
        for key, (total, n, low, high) in acc.items():
            if agg.func == "SUM":
                result: Any = total
            elif agg.func == "COUNT":
                result = n
            elif agg.func == "AVG":
                result = total / n
            elif agg.func == "MIN":
                result = low
            else:
                result = high
            out.append((key, result))
        return sorted(out)
