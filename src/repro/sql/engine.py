"""The mini SQL engine: batch kernels over decomposed column pages.

Covers the two exploratory queries of §6.6::

    SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100;

    SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue)
    FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5);

plus scan / top-k shapes, expressed through a small structured-query API
(:func:`select` / :func:`groupby_sum` / :func:`top_k`).  Execution is
columnar by default: predicates run as per-column loops over typed
zero-copy views, projections as per-column gathers, and aggregation zips
a key column against a value column — no row objects are reconstructed.
The optimizer (:func:`repro.core.optimizer.plan_sql_layout`) picks the
layout per relation; opaque relations fall back to row-major kernels
that pay the record-reconstruction cost on every read.

Cached relations are ordinary Deca page groups: they are charged to the
engine's :class:`~repro.memory.unified.UnifiedMemoryManager` (with
``memory:acquire``/``memory:release`` trace events), demote to the mmap
cold tier by moving raw bytes (zero serializer bytes) and promote back
zero-copy, with the provenance ledger auditing the extents in sanitize
mode.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..config import DecaConfig
from ..errors import SqlError
from ..jvm.heap import SimHeap
from ..jvm.objects import Lifetime
from ..memory.manager import DecaMemoryManager
from ..memory.provenance import ProvenanceLedger
from ..memory.tier import PageStoreTier
from ..memory.unified import UnifiedMemoryManager
from ..obs.tracer import Tracer
from ..simtime import SimClock
from .columnar import ColumnarTable, PagedRelation, RowMajorTable
from .schema import ColumnType, TableSchema

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}

_LAYOUTS = ("auto", "columnar", "row")


@dataclass(frozen=True)
class Filter:
    """``WHERE column <op> literal``."""

    column: str
    op: str
    literal: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SqlError(f"unsupported operator {self.op!r}")


_AGGREGATE_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregation:
    """``SELECT <key expr>, <func>(value) ... GROUP BY <key expr>``.

    *key_prefix* of ``None`` groups by the whole key column; *func* is one
    of SUM/COUNT/AVG/MIN/MAX (the aggregates Tungsten serializes, §7).
    """

    key_column: str
    value_column: str
    key_prefix: int | None = None
    func: str = "SUM"

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATE_FUNCS:
            raise SqlError(f"unsupported aggregate {self.func!r}; "
                           f"choose from {_AGGREGATE_FUNCS}")


@dataclass(frozen=True)
class Query:
    """One supported query shape against one table."""

    table: str
    projection: tuple[str, ...] = ()
    where: Filter | None = None
    aggregation: Aggregation | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.aggregation is None and not self.projection:
            raise SqlError("a non-aggregate query needs a projection")
        if self.aggregation is not None and (self.order_by is not None
                                             or self.limit is not None):
            raise SqlError("ORDER BY/LIMIT apply to scan queries only")
        if self.order_by is not None \
                and self.order_by not in self.projection:
            raise SqlError(
                f"ORDER BY column {self.order_by!r} must be projected")
        if self.limit is not None and self.limit < 0:
            raise SqlError(f"negative LIMIT {self.limit}")


def select(columns: Sequence[str], table: str,
           where: tuple[str, str, Any] | None = None) -> Query:
    """Build a projection/filter query (§6.6 Query 1 shape)."""
    condition = Filter(*where) if where is not None else None
    return Query(table=table, projection=tuple(columns), where=condition)


def top_k(columns: Sequence[str], table: str, order_by: str, k: int,
          descending: bool = True,
          where: tuple[str, str, Any] | None = None) -> Query:
    """Build a top-k query: filter, project, sort, keep *k* rows."""
    condition = Filter(*where) if where is not None else None
    return Query(table=table, projection=tuple(columns), where=condition,
                 order_by=order_by, descending=descending, limit=k)


def groupby_sum(table: str, key_column: str, value_column: str,
                key_prefix: int | None = None) -> Query:
    """Build a GroupBy-SUM query (§6.6 Query 2 shape)."""
    return Query(table=table,
                 aggregation=Aggregation(key_column, value_column,
                                         key_prefix))


def groupby_agg(table: str, func: str, key_column: str,
                value_column: str,
                key_prefix: int | None = None) -> Query:
    """Build a GroupBy query with any supported aggregate function."""
    return Query(table=table,
                 aggregation=Aggregation(key_column, value_column,
                                         key_prefix, func=func))


@dataclass
class QueryResult:
    """Rows plus the costs the engine charged."""

    rows: list[tuple]
    wall_ms: float
    gc_pause_ms: float
    cached_bytes: int


class SqlEngine:
    """The Spark SQL stand-in: paged relation cache + batch operators."""

    def __init__(self, config: DecaConfig | None = None) -> None:
        self.config = config or DecaConfig()
        self.clock = SimClock()
        self.tracer = Tracer()
        self.heap = SimHeap(self.config, self.clock, "sql-engine")
        # Cached relations are charged to a real unified arena regardless
        # of memory_mode: the static arena has no storage ledger, and SQL
        # caches escaping memory accounting is exactly the bug this
        # engine used to have.
        self.arena = UnifiedMemoryManager(self.config, clock=self.clock,
                                          tracer=self.tracer)
        self.ledger: ProvenanceLedger | None = None
        if self.config.sanitize:
            self.ledger = ProvenanceLedger(tracer=self.tracer,
                                           clock=self.clock)
        self.memory_manager = DecaMemoryManager(self.config,
                                                heap=self.heap,
                                                arena=self.arena)
        self._tables: dict[str, tuple[TableSchema, list]] = {}
        self._cached: dict[str, PagedRelation] = {}
        self._arena_entries: set[str] = set()
        self._tier: PageStoreTier | None = None
        # Serializer bytes copied during swaps: always 0 on the mmap
        # tier (pages move as raw bytes), > 0 when the heap tier has to
        # drain-copy a relation out.
        self.swap_copy_bytes = 0

    # -- catalog --------------------------------------------------------------
    def register_table(self, name: str, schema: TableSchema,
                       rows: Sequence[Sequence[Any]]) -> None:
        if name in self._tables:
            raise SqlError(f"table {name!r} already registered")
        self._tables[name] = (schema, list(rows))

    def cache_table(self, name: str,
                    layout: str = "auto") -> PagedRelation:
        """Materialize a table into the paged in-memory cache.

        *layout* is ``auto`` (ask the optimizer), ``columnar`` or
        ``row``.  The cached bytes are acquired from the unified arena
        (``memory:acquire``); under pressure the arena evicts relations
        LRU-first through :meth:`_evict_for_arena`.
        """
        schema, rows = self._lookup(name)
        if layout not in _LAYOUTS:
            raise SqlError(f"unknown layout {layout!r}; "
                           f"choose from {_LAYOUTS}")
        cached = self._cached.get(name)
        if cached is not None:
            if not cached.resident:
                self._promote(name, cached)
            return cached
        if layout == "auto":
            from ..core.optimizer import plan_sql_layout
            layout = plan_sql_layout(schema).layout
        cpu = self.config.cpu
        # Encoding cost: one pass over every cell.
        self.clock.advance(
            cpu.record_op_ms * len(rows) * len(schema.columns) * 0.25)
        cls = ColumnarTable if layout == "columnar" else RowMajorTable
        table = cls(schema, rows, manager=self.memory_manager,
                    group_name=f"sql:{name}")
        self._cached[name] = table
        self._charge(name, table)
        return table

    def uncache_table(self, name: str) -> None:
        table = self._cached.pop(name, None)
        if table is None:
            return
        self._discharge(name)
        table.release()
        if table.tier_key is not None and self._tier is not None:
            self._tier.drop(table.tier_key)

    def _lookup(self, name: str) -> tuple[TableSchema, list]:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"unknown table {name!r}") from None

    @property
    def cached_bytes(self) -> int:
        return sum(t.memory_bytes for t in self._cached.values())

    def layout_of(self, name: str) -> str | None:
        """The cached relation's layout (None when not cached)."""
        table = self._cached.get(name)
        return table.layout if table is not None else None

    # -- arena accounting -----------------------------------------------------
    def _charge(self, name: str, table: PagedRelation) -> None:
        granted = self.arena.storage_acquire(
            f"sql:{name}", table.memory_bytes,
            evict=lambda: self._evict_for_arena(name))
        if granted:
            self._arena_entries.add(name)

    def _discharge(self, name: str) -> None:
        if name in self._arena_entries:
            self._arena_entries.discard(name)
            if self.arena.storage_contains(f"sql:{name}"):
                self.arena.storage_discard(f"sql:{name}")

    def _evict_for_arena(self, name: str) -> None:
        """Arena pressure: demote the relation (mmap) or drop it (heap).

        Called by the arena's LRU eviction; the arena discards the
        storage entry itself afterwards.
        """
        self._arena_entries.discard(name)
        table = self._cached.get(name)
        if table is None or not table.resident:
            return
        if self.config.cold_tier == "mmap":
            table.demote(self._ensure_tier())
        else:
            # The heap tier has no byte-addressed extents: dropping the
            # relation costs a serializer pass on the next rebuild.
            self.swap_copy_bytes += table.used_bytes
            self._cached.pop(name, None)
            table.release()

    # -- cold-tier swaps ------------------------------------------------------
    def _ensure_tier(self) -> PageStoreTier:
        if self._tier is None:
            self._tier = PageStoreTier(tracer=self.tracer,
                                       clock=self.clock, tag="sql",
                                       ledger=self.ledger)
        return self._tier

    @property
    def tier_stats(self) -> dict[str, int] | None:
        if self._tier is None:
            return None
        return self._tier.stats.to_dict()

    def demote_table(self, name: str) -> int:
        """Swap a cached relation out of RAM; returns bytes moved.

        On the mmap tier the pages move as raw bytes and the relation
        stays cached (non-resident); on the heap tier the relation is
        dropped and its bytes counted as serializer copies.
        """
        table = self._cached.get(name)
        if table is None or not table.resident:
            return 0
        self._discharge(name)
        if self.config.cold_tier != "mmap":
            moved = table.used_bytes
            self.swap_copy_bytes += moved
            self._cached.pop(name, None)
            table.release()
            return moved
        return table.demote(self._ensure_tier())

    def _promote(self, name: str, table: PagedRelation) -> None:
        if self._tier is None or table.tier_key is None:
            raise SqlError(
                f"cached table {name!r} has no cold-tier extent")
        table.promote(self._tier, ledger=self.ledger)
        self._charge(name, table)

    def close(self) -> None:
        """Release every cached relation and the cold tier's file."""
        for name in list(self._cached):
            self.uncache_table(name)
        if self._tier is not None:
            self._tier.close()
            self._tier = None

    def __enter__(self) -> "SqlEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def sql(self, statement: str) -> QueryResult:
        """Parse and run a SQL statement (the §6.6 dialect)."""
        from .parser import parse
        return self.run(parse(statement))

    # -- execution --------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        self._lookup(query.table)
        table = self._cached.get(query.table)
        if table is not None and not table.resident:
            self._promote(query.table, table)
        else:
            table = self.cache_table(query.table)
        start_ms = self.clock.now_ms
        gc_start = self.heap.stats.pause_ms
        if query.aggregation is not None:
            rows = self._run_aggregate(table, query.aggregation)
        else:
            rows = self._run_scan(table, query)
        return QueryResult(
            rows=rows,
            wall_ms=self.clock.now_ms - start_ms,
            gc_pause_ms=self.heap.stats.pause_ms - gc_start,
            cached_bytes=self.cached_bytes,
        )

    def _scan_cost_per_row(self, table: PagedRelation) -> float:
        """Bytes-touched cost of reading one predicate/key value.

        Columnar reads touch exactly one column run; row-major reads
        must walk the whole record (every column's bytes) and box the
        fields into a row tuple first.
        """
        cpu = self.config.cpu
        if table.layout == "row":
            width = len(table.schema.columns)
            return cpu.page_access_ms * width + cpu.boxing_ms
        return cpu.page_access_ms

    def _run_scan(self, table: PagedRelation,
                  query: Query) -> list[tuple]:
        cpu = self.config.cpu
        count = table.row_count
        matches: list[int]
        if query.where is not None:
            condition = query.where
            column = table.column(condition.column)
            # Columnar: a tight per-column predicate loop over the typed
            # view.  Row-major: the same predicate, but every probe
            # reconstructs a record.
            self.clock.advance(self._scan_cost_per_row(table) * count)
            matches = column.select(_OPS[condition.op], condition.literal)
        else:
            matches = list(range(count))
        if table.layout == "row":
            per_row = (cpu.page_access_ms * len(table.schema.columns)
                       + cpu.boxing_ms)
        else:
            per_row = cpu.page_access_ms * max(1, len(query.projection))
        self.clock.advance(per_row * len(matches))
        # Result rows are short-lived driver objects.
        temp = self.heap.new_group("sql-result", Lifetime.TEMPORARY)
        self.heap.allocate(temp, len(matches), 48 * max(1, len(matches)))
        out = table.gather(matches, query.projection)
        self.heap.free_group(temp)
        if query.order_by is not None:
            key_index = query.projection.index(query.order_by)
            self.clock.advance(cpu.sort_per_record_ms * len(out))
            out.sort(key=lambda row: row[key_index],
                     reverse=query.descending)
        if query.limit is not None:
            out = out[:query.limit]
        return out

    def _run_aggregate(self, table: PagedRelation,
                       agg: Aggregation) -> list[tuple]:
        cpu = self.config.cpu
        key_col = table.column(agg.key_column)
        value_col = table.column(agg.value_column)
        key_type = table.schema.column(agg.key_column).ctype
        if agg.key_prefix is not None \
                and key_type is not ColumnType.STRING:
            raise SqlError("SUBSTR needs a string column")
        # One zipped pass over the key and value columns; the
        # aggregation buffer holds primitive accumulators
        # (Tungsten-style), not boxed objects.
        count = table.row_count
        if table.layout == "row":
            per_row = (self._scan_cost_per_row(table) * 2
                       + cpu.hash_probe_ms)
        else:
            per_row = cpu.page_access_ms * 2 + cpu.hash_probe_ms
        self.clock.advance(per_row * count)
        buffer_group = self.heap.new_group("sql-agg-buffer",
                                           Lifetime.PINNED)
        if agg.key_prefix is not None:
            keys = key_col.prefix_values(agg.key_prefix)
        else:
            keys = key_col.values()
        # Accumulators: (sum, count, min, max) cover every function.
        acc: dict[Any, list] = {}
        for key, value in zip(keys, value_col.values()):
            slot = acc.get(key)
            if slot is None:
                acc[key] = [value, 1, value, value]
                self.heap.allocate(buffer_group, 1, 56)
            else:
                slot[0] += value
                slot[1] += 1
                if value < slot[2]:
                    slot[2] = value
                if value > slot[3]:
                    slot[3] = value
        self.heap.free_group(buffer_group)
        out = []
        for key, (total, n, low, high) in acc.items():
            if agg.func == "SUM":
                result: Any = total
            elif agg.func == "COUNT":
                result = n
            elif agg.func == "AVG":
                result = total / n
            elif agg.func == "MIN":
                result = low
            else:
                result = high
            out.append((key, result))
        return sorted(out)
