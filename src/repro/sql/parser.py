"""A small SQL parser for the query shapes of §6.6.

Covers exactly the dialect the paper's comparison uses::

    SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100;

    SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue)
    FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5);

i.e. projection with an optional single comparison predicate,
GroupBy-aggregation with ``SUM`` over an optional ``SUBSTR`` key, and
``ORDER BY ... LIMIT`` for top-k scans.  Identifiers may be
double-quoted (``"pageURL"``).  The parser produces the structured
:class:`~repro.sql.engine.Query` the engine executes; anything outside
the dialect raises :class:`~repro.errors.SqlError` with a pointed
message.
"""

from __future__ import annotations

import re

from ..errors import SqlError
from .engine import Aggregation, Filter, Query

_WS = r"\s+"
_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"
_NAME = rf"(?:{_IDENT}|\"{_IDENT}\")"
_LITERAL = r"(?:-?\d+(?:\.\d+)?|'[^']*')"

_SUBSTR = re.compile(
    rf"SUBSTR\s*\(\s*({_NAME})\s*,\s*1\s*,\s*(\d+)\s*\)",
    re.IGNORECASE)
_AGG = re.compile(
    rf"(SUM|COUNT|AVG|MIN|MAX)\s*\(\s*({_NAME})\s*\)",
    re.IGNORECASE)

_SELECT = re.compile(
    rf"^\s*SELECT{_WS}(?P<select>.+?)"
    rf"{_WS}FROM{_WS}(?P<table>{_NAME})"
    rf"(?:{_WS}WHERE{_WS}(?P<where>.+?))?"
    rf"(?:{_WS}GROUP{_WS}BY{_WS}(?P<group>.+?))?"
    rf"(?:{_WS}ORDER{_WS}BY{_WS}(?P<order>{_NAME})"
    rf"(?:{_WS}(?P<direction>ASC|DESC))?)?"
    rf"(?:{_WS}LIMIT{_WS}(?P<limit>\d+))?"
    rf"\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)

_CONDITION = re.compile(
    rf"^\s*({_NAME})\s*(>=|<=|!=|==|=|>|<)\s*({_LITERAL})\s*$")


def _unquote(name: str) -> str:
    if name.startswith('"'):
        return name[1:-1]
    return name


def parse(sql: str) -> Query:
    """Parse *sql* into a :class:`Query`."""
    match = _SELECT.match(sql)
    if match is None:
        raise SqlError(
            "unsupported statement; expected "
            "SELECT ... FROM <table> [WHERE ...] [GROUP BY ...] "
            "[ORDER BY ... [DESC]] [LIMIT n]")
    table = _unquote(match.group("table"))
    select = match.group("select").strip()
    where = match.group("where")
    group = match.group("group")
    order = match.group("order")
    direction = match.group("direction")
    limit = match.group("limit")

    if group is not None:
        if order is not None or limit is not None:
            raise SqlError(
                "ORDER BY/LIMIT with GROUP BY is not supported")
        return _parse_aggregate(table, select, group, where)
    return _parse_scan(table, select, where, order, direction, limit)


def _parse_scan(table: str, select: str, where: str | None,
                order: str | None, direction: str | None,
                limit: str | None) -> Query:
    columns = []
    for part in select.split(","):
        name = part.strip()
        if not re.fullmatch(_NAME, name):
            raise SqlError(
                f"unsupported select expression {name!r}; plain column "
                "names only (aggregates need GROUP BY)")
        columns.append(_unquote(name))
    condition = _parse_condition(where) if where is not None else None
    return Query(table=table, projection=tuple(columns), where=condition,
                 order_by=_unquote(order) if order is not None else None,
                 descending=(direction or "").upper() == "DESC",
                 limit=int(limit) if limit is not None else None)


def _parse_condition(text: str) -> Filter:
    match = _CONDITION.match(text)
    if match is None:
        raise SqlError(
            f"unsupported WHERE clause {text.strip()!r}; expected "
            "<column> <op> <literal>")
    column, op, literal = match.groups()
    return Filter(_unquote(column), op, _parse_literal(literal))


def _parse_literal(text: str) -> int | float | str:
    if text.startswith("'"):
        return text[1:-1]
    try:
        if "." in text:
            return float(text)
        return int(text)
    except ValueError as exc:  # unreachable via _LITERAL, but typed
        raise SqlError(f"malformed literal {text!r}") from exc


def _parse_aggregate(table: str, select: str, group: str,
                     where: str | None) -> Query:
    if where is not None:
        raise SqlError("WHERE together with GROUP BY is not supported")
    group = group.strip()
    substr = _SUBSTR.fullmatch(group)
    if substr is not None:
        key_column = _unquote(substr.group(1))
        key_prefix: int | None = int(substr.group(2))
    elif re.fullmatch(_NAME, group):
        key_column, key_prefix = _unquote(group), None
    else:
        raise SqlError(
            f"unsupported GROUP BY expression {group!r}; expected a "
            "column or SUBSTR(column, 1, n)")

    # The select list must be: the group key expression, then one
    # aggregate over a column.
    parts = _split_select(select)
    if len(parts) != 2:
        raise SqlError(
            "aggregate queries select exactly the group key and one "
            "aggregate function")
    key_part, agg_part = parts
    if _normalize(key_part) != _normalize(group):
        raise SqlError(
            f"select key {key_part!r} must match the GROUP BY "
            f"expression {group!r}")
    agg_match = _AGG.fullmatch(agg_part.strip())
    if agg_match is None:
        raise SqlError(
            f"unsupported aggregate {agg_part.strip()!r}; expected "
            "SUM/COUNT/AVG/MIN/MAX(column)")
    return Query(table=table,
                 aggregation=Aggregation(key_column,
                                         _unquote(agg_match.group(2)),
                                         key_prefix,
                                         func=agg_match.group(1).upper()))


def _split_select(select: str) -> list[str]:
    """Split the select list on commas not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in select:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [p.strip() for p in parts]


def _normalize(expr: str) -> str:
    return re.sub(r"\s+", "", expr).lower().replace('"', "")
