"""Column-wise table storage (the Spark SQL in-memory cache).

Each fixed-width column becomes one packed byte array; each string column
becomes a packed UTF-8 blob plus an offsets array.  A million-row table is
therefore a dozen heap objects — which is exactly why Spark SQL's GC time
in Table 6 is negligible while row-object Spark spends half the query on
collections.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence

from ..errors import SchemaError
from ..jvm.heap import SimHeap
from ..jvm.objects import AllocationGroup, Lifetime
from ..jvm.sizing import array_bytes
from .schema import ColumnType, TableSchema


class _FixedColumn:
    """A packed fixed-width column."""

    def __init__(self, code: str, values: Sequence[Any]) -> None:
        self._struct = struct.Struct(f"<{len(values)}{code}")
        self.data = bytearray(self._struct.size)
        self._struct.pack_into(self.data, 0, *values)
        self._item = struct.Struct(f"<{code}")
        self.count = len(values)

    def get(self, row: int) -> Any:
        (value,) = self._item.unpack_from(self.data,
                                          row * self._item.size)
        return value

    def values(self) -> Iterator[Any]:
        return iter(self._struct.unpack_from(self.data, 0))

    @property
    def nbytes(self) -> int:
        return len(self.data)


class _StringColumn:
    """A packed string column: UTF-8 blob + offset array."""

    def __init__(self, values: Sequence[str]) -> None:
        blob = bytearray()
        offsets = [0]
        for value in values:
            blob.extend(value.encode("utf-8"))
            offsets.append(len(blob))
        self.blob = bytes(blob)
        self.offsets = offsets
        self.count = len(values)

    def get(self, row: int) -> str:
        return self.blob[self.offsets[row]:self.offsets[row + 1]] \
            .decode("utf-8")

    def get_prefix(self, row: int, length: int) -> str:
        """``SUBSTR(col, 1, length)`` without decoding the whole string."""
        start = self.offsets[row]
        end = min(start + length, self.offsets[row + 1])
        return self.blob[start:end].decode("utf-8", errors="ignore")

    def values(self) -> Iterator[str]:
        for row in range(self.count):
            yield self.get(row)

    @property
    def nbytes(self) -> int:
        return len(self.blob) + 4 * len(self.offsets)


class ColumnarTable:
    """One table cached column-wise, registered on a simulated heap."""

    def __init__(self, schema: TableSchema,
                 rows: Sequence[Sequence[Any]],
                 heap: SimHeap | None = None) -> None:
        for row in rows:
            schema.validate_row(row)
        self.schema = schema
        self.row_count = len(rows)
        self._columns: list[_FixedColumn | _StringColumn] = []
        for index, column in enumerate(schema.columns):
            values = [row[index] for row in rows]
            if column.ctype is ColumnType.STRING:
                self._columns.append(_StringColumn(values))
            else:
                code = column.ctype.struct_code
                assert code is not None
                self._columns.append(_FixedColumn(code, values))
        self._group: AllocationGroup | None = None
        if heap is not None:
            # Two heap objects per column (data + bookkeeping array).
            self._group = heap.new_group(
                f"sql-table:{schema.name}", Lifetime.PINNED)
            heap.allocate(self._group, 2 * len(self._columns),
                          self.memory_bytes)
        self._heap = heap

    @property
    def memory_bytes(self) -> int:
        return sum(array_bytes(1, c.nbytes) for c in self._columns)

    def column(self, name: str) -> _FixedColumn | _StringColumn:
        return self._columns[self.schema.column_index(name)]

    def row(self, index: int) -> tuple:
        if not 0 <= index < self.row_count:
            raise SchemaError(f"row {index} out of range")
        return tuple(c.get(index) for c in self._columns)

    def release(self) -> None:
        """Drop the cached columns (the table's lifetime ends)."""
        if self._group is not None and not self._group.freed \
                and self._heap is not None:
            self._heap.free_group(self._group)
            self._group = None

    def __repr__(self) -> str:
        return (f"ColumnarTable({self.schema.name!r}, "
                f"rows={self.row_count}, {self.memory_bytes} B)")
