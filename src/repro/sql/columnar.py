"""Cached SQL relations as lifetime-decomposed Deca pages.

The Spark SQL in-memory cache and the decomposition layer used to be two
parallel stores; this module fuses them (ROADMAP item 3).  A cached
relation is one :class:`~repro.memory.page.PageGroup` allocated through
the executor's page manager:

* **column-major** (:class:`ColumnarTable`): one contiguous page run per
  column (offsets + blob runs for strings), read through typed zero-copy
  views (``memoryview.cast``) — the structure-of-arrays organization of
  Sparkle fused onto Deca pages;
* **row-major** (:class:`RowMajorTable`): the existing record layout of
  :mod:`repro.memory.layout`, one packed record per row — the fallback
  the optimizer picks for opaque relations.

Because both are plain page groups, everything built for Deca pages
applies to SQL caches for free: the unified arena charges them, the mmap
cold tier swaps them by moving raw bytes (zero serializer bytes), and the
provenance ledger tracks promoted extents as borrows.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..analysis.udt import CHAR, DOUBLE, INT, LONG
from ..errors import MemoryLayoutError, SchemaError, SqlError
from ..jvm.heap import SimHeap
from ..memory.layout import (
    FixedColumnLayout,
    PrimitiveSlot,
    RecordSchema,
    StringColumnLayout,
    StringRunView,
    VarArraySchema,
)
from ..memory.manager import DecaMemoryManager
from ..memory.page import PageGroup, PagePointer
from ..memory.provenance import ProvenanceLedger
from ..memory.tier import PageStoreTier
from .schema import ColumnType, TableSchema

# Page size for standalone (manager-less) tables; irrelevant for sizing
# because column runs and records always allocate exactly-sized pages via
# the group, but PageGroup requires a positive default.
_DEFAULT_PAGE_BYTES = 64 * 1024

_FIXED_CODES = {
    ColumnType.INT: "i",
    ColumnType.LONG: "q",
    ColumnType.DOUBLE: "d",
}

# The analysis primitives backing each fixed-width SQL type (row-major
# records reuse the decomposition schemas of repro.memory.layout).
_ROW_PRIMITIVES = {
    ColumnType.INT: INT,
    ColumnType.LONG: LONG,
    ColumnType.DOUBLE: DOUBLE,
}


def row_major_schema(schema: TableSchema) -> RecordSchema:
    """The record (row-major) layout schema for a SQL relation.

    Strings and opaque byte payloads become var-length char arrays —
    exactly how the decomposition layer lays out a JVM string's backing
    array.
    """
    fields: list[tuple[str, Any]] = []
    for column in schema.columns:
        primitive = _ROW_PRIMITIVES.get(column.ctype)
        if primitive is not None:
            fields.append((column.name, PrimitiveSlot(primitive)))
        else:
            fields.append((column.name, VarArraySchema(PrimitiveSlot(CHAR))))
    return RecordSchema(schema.name, fields)


class PagedRelation:
    """Base of both cached-relation layouts: one page group + swap state.

    The group is created through the executor's
    :class:`~repro.memory.manager.DecaMemoryManager` when one is given
    (the engine path) or standalone against a plain heap (the unit-test
    path).  ``tier_key`` survives a demote so a re-demote of promoted
    pages moves zero bytes, mirroring the cache manager's protocol.
    """

    layout = "paged"
    row_count = 0

    def __init__(self, schema: TableSchema,
                 heap: SimHeap | None = None,
                 manager: DecaMemoryManager | None = None,
                 group_name: str | None = None) -> None:
        self.schema = schema
        self._heap = heap
        self._manager = manager
        self.group_name = group_name or f"sql:{schema.name}"
        self.tier_key: str | None = None
        self._group: PageGroup | None = self._new_group()

    def _new_group(self) -> PageGroup:
        if self._manager is not None:
            return self._manager.new_page_group(
                self.group_name, page_bytes=_DEFAULT_PAGE_BYTES)
        return PageGroup(self.group_name, _DEFAULT_PAGE_BYTES,
                         heap=self._heap)

    # -- sizes ----------------------------------------------------------------
    @property
    def resident(self) -> bool:
        return self._group is not None and not self._group.reclaimed

    @property
    def memory_bytes(self) -> int:
        """Heap bytes held by the relation's pages (0 once demoted)."""
        if self._group is None or self._group.reclaimed:
            return 0
        return self._group.allocated_bytes

    @property
    def used_bytes(self) -> int:
        if self._group is None or self._group.reclaimed:
            return 0
        return self._group.used_bytes

    def _require_group(self) -> PageGroup:
        if self._group is None or self._group.reclaimed:
            raise SqlError(
                f"table {self.schema.name!r} is not resident; promote it "
                "from the cold tier first")
        return self._group

    # -- hooks the layouts provide -------------------------------------------
    def drop_views(self) -> None:
        """Release any typed views into the pages (no-op by default)."""

    def column(self, name: str) -> Any:
        """A batch column accessor (layout subclasses provide one)."""
        raise NotImplementedError

    def row(self, index: int) -> tuple:
        """Reconstruct one row (layout subclasses provide it)."""
        raise NotImplementedError

    def gather(self, rows: Sequence[int],
               columns: Sequence[str]) -> list[tuple]:
        """Project *columns* for *rows* (layout subclasses provide it)."""
        raise NotImplementedError

    # -- swap protocol --------------------------------------------------------
    def demote(self, tier: PageStoreTier) -> int:
        """Swap the relation's pages out to *tier* and reclaim them.

        The pages already are the wire format, so the extent write moves
        the raw bytes — no serializer runs.  Returns the bytes moved (0
        when the extent from a previous demote is still valid).
        """
        group = self._require_group()
        self.drop_views()
        moved = 0
        if self.tier_key is None:
            self.tier_key = f"sql:{self.schema.name}"
            moved = tier.swap_out(self.tier_key, group.swap_chunks())
        self._group = None
        group.reclaim()
        return moved

    def promote(self, tier: PageStoreTier,
                ledger: ProvenanceLedger | None = None) -> None:
        """Adopt the tier extent's bytes back as pages — zero copy.

        Pages are re-adopted in their original order, so every
        :class:`~repro.memory.page.PagePointer` held by the column
        accessors stays valid.  Under the sanitizer the extent borrow is
        retained against the new group.
        """
        if self.resident:
            return
        if self.tier_key is None:
            raise SqlError(
                f"table {self.schema.name!r} has no cold-tier extent")
        group = self._new_group()
        for view in tier.swap_in(self.tier_key):
            group.adopt_page(view)
        if ledger is not None:
            ledger.retain("extent", self.tier_key, group=group.name)
            group.ledger = ledger
        self._group = group

    def release(self) -> None:
        """Drop the cached pages (the relation's lifetime ends)."""
        group = self._group
        self._group = None
        if group is None or group.reclaimed:
            return
        self.drop_views()
        group.reclaim()

    def __repr__(self) -> str:
        state = "resident" if self.resident else "demoted"
        return (f"{type(self).__name__}({self.schema.name!r}, "
                f"rows={getattr(self, 'row_count', 0)}, "
                f"{self.memory_bytes} B, {state})")


# -- column-major ------------------------------------------------------------
class _FixedColumnReader:
    """Batch accessor over one fixed-width column run."""

    __slots__ = ("_table", "_index", "_layout", "count")

    def __init__(self, table: "ColumnarTable", index: int,
                 layout: FixedColumnLayout, count: int) -> None:
        self._table = table
        self._index = index
        self._layout = layout
        self.count = count

    def _view(self) -> memoryview:
        return self._table.typed_view(self._index)

    def get(self, row: int) -> Any:
        return self._view()[row]

    def values(self) -> Iterator[Any]:
        return iter(self._view())

    def select(self, op: Callable[[Any, Any], bool],
               literal: Any) -> list[int]:
        """Row indices where ``op(value, literal)`` holds — one tight
        per-column predicate loop over the typed view."""
        view = self._view()
        return [row for row, value in enumerate(view)
                if op(value, literal)]

    def gather(self, rows: Sequence[int]) -> list[Any]:
        view = self._view()
        return [view[row] for row in rows]

    @property
    def nbytes(self) -> int:
        return self.count * self._layout.item_size


class _StringColumnReader:
    """Batch accessor over a string column's offsets + blob runs."""

    __slots__ = ("_table", "_index", "count")

    def __init__(self, table: "ColumnarTable", index: int,
                 count: int) -> None:
        self._table = table
        self._index = index
        self.count = count

    def _view(self) -> StringRunView:
        return self._table.string_view(self._index)

    def get(self, row: int) -> str:
        return self._view().get(row)

    def get_prefix(self, row: int, length: int) -> str:
        """``SUBSTR(col, 1, length)`` without decoding the whole string."""
        return self._view().get_prefix(row, length)

    def values(self) -> Iterator[str]:
        return iter(self._view())

    def prefix_values(self, length: int) -> Iterator[str]:
        view = self._view()
        for row in range(view.count):
            yield view.get_prefix(row, length)

    def select(self, op: Callable[[Any, Any], bool],
               literal: Any) -> list[int]:
        view = self._view()
        return [row for row in range(view.count)
                if op(view.get(row), literal)]

    def gather(self, rows: Sequence[int]) -> list[str]:
        view = self._view()
        return [view.get(row) for row in rows]

    @property
    def nbytes(self) -> int:
        view = self._view()
        return len(view.blob) + len(view.offsets) * 4


class ColumnarTable(PagedRelation):
    """One relation cached column-major: one page run per column.

    Fixed-width columns occupy one run each; string columns occupy two
    (uint32 offsets + UTF-8 blob).  Reads go through typed zero-copy
    views that the table caches and releases before any demote or
    reclaim — a cast view left open would keep an adopted tier extent
    exported, which the sanitizer reports.
    """

    layout = "columnar"

    def __init__(self, schema: TableSchema,
                 rows: Sequence[Sequence[Any]],
                 heap: SimHeap | None = None,
                 manager: DecaMemoryManager | None = None,
                 group_name: str | None = None) -> None:
        for row in rows:
            schema.validate_row(row)
        # Plan every column before touching the page manager, so an
        # unsupported schema fails without leaking a registered group.
        layouts: list[FixedColumnLayout | StringColumnLayout] = []
        for column in schema.columns:
            code = _FIXED_CODES.get(column.ctype)
            if code is not None:
                layouts.append(FixedColumnLayout(code))
            elif column.ctype is ColumnType.STRING:
                layouts.append(StringColumnLayout())
            else:
                raise MemoryLayoutError(
                    f"column {schema.name}.{column.name} "
                    f"({column.ctype.value}) has no column-major layout")
        super().__init__(schema, heap=heap, manager=manager,
                         group_name=group_name)
        self.row_count = len(rows)
        self._layouts = layouts
        self._runs: list[tuple[PagePointer, ...]] = []
        self._readers: dict[int, Any] = {}
        self._view_cache: dict[int, Any] = {}
        group = self._require_group()
        for index, layout in enumerate(layouts):
            values = [row[index] for row in rows]
            if isinstance(layout, FixedColumnLayout):
                self._runs.append((group.append_run(layout.emit(values)),))
            else:
                offsets_run, blob_run = layout.emit(values)
                self._runs.append((group.append_run(offsets_run),
                                   group.append_run(blob_run)))

    @property
    def run_count(self) -> int:
        """Contiguous page runs (= pages = heap objects) the table holds."""
        return sum(len(runs) for runs in self._runs)

    # -- typed views ----------------------------------------------------------
    def typed_view(self, index: int) -> memoryview:
        cached = self._view_cache.get(index)
        if cached is not None:
            return cached
        group = self._require_group()
        layout = self._layouts[index]
        assert isinstance(layout, FixedColumnLayout)
        (ptr,) = self._runs[index]
        page = group.page(ptr.page_index)
        view = layout.view(page.data, ptr.offset, ptr.length)
        self._view_cache[index] = view
        return view

    def string_view(self, index: int) -> StringRunView:
        cached = self._view_cache.get(index)
        if cached is not None:
            return cached
        group = self._require_group()
        layout = self._layouts[index]
        assert isinstance(layout, StringColumnLayout)
        offsets_ptr, blob_ptr = self._runs[index]
        offsets_page = group.page(offsets_ptr.page_index)
        blob_page = group.page(blob_ptr.page_index)
        view = layout.view(offsets_page.data, offsets_ptr.offset,
                           offsets_ptr.length,
                           blob_page.data, blob_ptr.offset,
                           blob_ptr.length)
        self._view_cache[index] = view
        return view

    def drop_views(self) -> None:
        """Release every cached typed view (before demote/reclaim)."""
        views = list(self._view_cache.values())
        self._view_cache = {}
        for view in views:
            try:
                view.release()
            except BufferError:
                pass

    # -- access ---------------------------------------------------------------
    def column(self, name: str) -> Any:
        index = self.schema.column_index(name)
        reader = self._readers.get(index)
        if reader is None:
            layout = self._layouts[index]
            if isinstance(layout, FixedColumnLayout):
                reader = _FixedColumnReader(self, index, layout,
                                            self.row_count)
            else:
                reader = _StringColumnReader(self, index, self.row_count)
            self._readers[index] = reader
        return reader

    def row(self, index: int) -> tuple:
        if not 0 <= index < self.row_count:
            raise SchemaError(f"row {index} out of range")
        return tuple(self.column(c.name).get(index)
                     for c in self.schema.columns)

    def gather(self, rows: Sequence[int],
               columns: Sequence[str]) -> list[tuple]:
        """Batch projection: one gather per column, zipped into tuples."""
        pulled = [self.column(name).gather(rows) for name in columns]
        return list(zip(*pulled)) if pulled else [() for _ in rows]


# -- row-major ---------------------------------------------------------------
class _RowColumnReader:
    """Column access over a row-major relation — every read reconstructs
    the whole record, which is exactly the cost columnar layout avoids."""

    __slots__ = ("_table", "_index", "count")

    def __init__(self, table: "RowMajorTable", index: int,
                 count: int) -> None:
        self._table = table
        self._index = index
        self.count = count

    def get(self, row: int) -> Any:
        return self._table.row(row)[self._index]

    def get_prefix(self, row: int, length: int) -> str:
        return self.get(row)[:length]

    def values(self) -> Iterator[Any]:
        for row in range(self.count):
            yield self.get(row)

    def prefix_values(self, length: int) -> Iterator[str]:
        for row in range(self.count):
            yield self.get(row)[:length]

    def select(self, op: Callable[[Any, Any], bool],
               literal: Any) -> list[int]:
        return [row for row, value in enumerate(self.values())
                if op(value, literal)]

    def gather(self, rows: Sequence[int]) -> list[Any]:
        return [self.get(row) for row in rows]

    @property
    def nbytes(self) -> int:
        return 0  # interleaved with every other column's bytes


class RowMajorTable(PagedRelation):
    """One relation cached row-major: one packed record per row.

    This is the decomposition layer's record layout applied unchanged —
    the fallback for opaque relations the column planner rejects.
    Strings (and opaque byte payloads) are stored as var-length char
    arrays inside each record.
    """

    layout = "row"

    def __init__(self, schema: TableSchema,
                 rows: Sequence[Sequence[Any]],
                 heap: SimHeap | None = None,
                 manager: DecaMemoryManager | None = None,
                 group_name: str | None = None) -> None:
        for row in rows:
            schema.validate_row(row)
        super().__init__(schema, heap=heap, manager=manager,
                         group_name=group_name)
        self.row_count = len(rows)
        self.record_schema = row_major_schema(schema)
        self._readers: dict[int, _RowColumnReader] = {}
        group = self._require_group()
        self._pointers = [
            group.append_bytes(
                self.record_schema.pack(self._encode(row)))
            for row in rows]
        # A cached relation never appends again: give the unused tail of
        # the last page back (the §2.3 "large unused memory spaces").
        group.trim()

    def _encode(self, row: Sequence[Any]) -> tuple:
        out = []
        for column, value in zip(self.schema.columns, row):
            if column.ctype in _ROW_PRIMITIVES:
                out.append(value)
            elif isinstance(value, str):
                out.append(tuple(ord(ch) for ch in value))
            else:
                out.append(tuple(value))  # opaque byte payload
        return tuple(out)

    def _decode(self, packed: tuple) -> tuple:
        out = []
        for column, value in zip(self.schema.columns, packed):
            if column.ctype in _ROW_PRIMITIVES:
                out.append(value)
            elif column.ctype is ColumnType.STRING:
                out.append("".join(chr(unit) for unit in value))
            else:
                out.append(bytes(value))
        return tuple(out)

    def row(self, index: int) -> tuple:
        if not 0 <= index < self.row_count:
            raise SchemaError(f"row {index} out of range")
        group = self._require_group()
        buffer, offset = group.read(self._pointers[index])
        value, _ = self.record_schema.unpack_from(buffer, offset)
        return self._decode(value)

    def column(self, name: str) -> _RowColumnReader:
        index = self.schema.column_index(name)
        reader = self._readers.get(index)
        if reader is None:
            reader = _RowColumnReader(self, index, self.row_count)
            self._readers[index] = reader
        return reader

    def gather(self, rows: Sequence[int],
               columns: Sequence[str]) -> list[tuple]:
        """Row-at-a-time projection: each output row re-reads its record."""
        indexes = [self.schema.column_index(name) for name in columns]
        out = []
        for row in rows:
            record = self.row(row)
            out.append(tuple(record[i] for i in indexes))
        return out
