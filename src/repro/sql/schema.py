"""Table schemas for the mini SQL engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import SchemaError

if TYPE_CHECKING:
    from ..analysis.udt import ClassType


class ColumnType(enum.Enum):
    """Supported column types (the Big Data Benchmark schema needs these).

    ``OPAQUE`` holds byte payloads the analysis cannot see into (blobs a
    UDF serialized itself); relations carrying one are not fixed-schema,
    so the optimizer falls back to the row-major layout for them.
    """

    INT = "int"
    LONG = "long"
    DOUBLE = "double"
    STRING = "string"
    OPAQUE = "opaque"

    @property
    def struct_code(self) -> str | None:
        """Struct code for fixed-width columns (None for strings)."""
        return {"int": "i", "long": "q", "double": "d"}.get(self.value)

    def validate(self, value: Any) -> None:
        if self is ColumnType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {value!r}")
        elif self is ColumnType.OPAQUE:
            if not isinstance(value, (bytes, bytearray)):
                raise SchemaError(f"expected bytes, got {value!r}")
        elif self is ColumnType.DOUBLE:
            if not isinstance(value, (int, float)):
                raise SchemaError(f"expected number, got {value!r}")
        else:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"expected int, got {value!r}")


@dataclass(frozen=True)
class Column:
    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name cannot be empty")


class TableSchema:
    """An ordered list of named, typed columns."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name!r}")

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def validate_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != {len(self.columns)} "
                f"for table {self.name!r}")
        for column, value in zip(self.columns, row):
            column.ctype.validate(value)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


def table_udt(schema: TableSchema) -> "ClassType":
    """Synthesize the analysis UDT for a SQL relation.

    One final field per column: fixed-width columns map to primitives,
    strings to char arrays (RFSTs, like a JVM String's backing array),
    and opaque payloads to an array with a *polymorphic* element type-set
    — the analysis cannot prove anything about their contents, which is
    what pushes the optimizer's layout decision to row-major.
    """
    from ..analysis.udt import (
        BYTE,
        CHAR,
        DOUBLE,
        INT,
        LONG,
        ArrayType,
        ClassType,
        Field,
    )
    primitives = {ColumnType.INT: INT, ColumnType.LONG: LONG,
                  ColumnType.DOUBLE: DOUBLE}
    fields: list[Field] = []
    for column in schema.columns:
        primitive = primitives.get(column.ctype)
        if primitive is not None:
            fields.append(Field(column.name, primitive, final=True))
        elif column.ctype is ColumnType.STRING:
            fields.append(Field(column.name, ArrayType(CHAR), final=True))
        else:
            fields.append(Field(
                column.name,
                ArrayType(BYTE, element_type_set=(BYTE, CHAR)),
                final=True))
    return ClassType(f"SqlRelation_{schema.name}", fields)


RANKINGS_SCHEMA = TableSchema("rankings", [
    Column("pageURL", ColumnType.STRING),
    Column("pageRank", ColumnType.INT),
    Column("avgDuration", ColumnType.INT),
])

USERVISITS_SCHEMA = TableSchema("uservisits", [
    Column("sourceIP", ColumnType.STRING),
    Column("destURL", ColumnType.STRING),
    Column("visitDate", ColumnType.INT),
    Column("adRevenue", ColumnType.DOUBLE),
    Column("userAgent", ColumnType.STRING),
    Column("countryCode", ColumnType.STRING),
    Column("languageCode", ColumnType.STRING),
    Column("searchWord", ColumnType.STRING),
    Column("duration", ColumnType.INT),
])
