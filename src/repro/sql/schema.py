"""Table schemas for the mini SQL engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types (the Big Data Benchmark schema needs these)."""

    INT = "int"
    LONG = "long"
    DOUBLE = "double"
    STRING = "string"

    @property
    def struct_code(self) -> str | None:
        """Struct code for fixed-width columns (None for strings)."""
        return {"int": "i", "long": "q", "double": "d"}.get(self.value)

    def validate(self, value: Any) -> None:
        if self is ColumnType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {value!r}")
        elif self is ColumnType.DOUBLE:
            if not isinstance(value, (int, float)):
                raise SchemaError(f"expected number, got {value!r}")
        else:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"expected int, got {value!r}")


@dataclass(frozen=True)
class Column:
    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name cannot be empty")


class TableSchema:
    """An ordered list of named, typed columns."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name!r}")

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def validate_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != {len(self.columns)} "
                f"for table {self.name!r}")
        for column, value in zip(self.columns, row):
            column.ctype.validate(value)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


RANKINGS_SCHEMA = TableSchema("rankings", [
    Column("pageURL", ColumnType.STRING),
    Column("pageRank", ColumnType.INT),
    Column("avgDuration", ColumnType.INT),
])

USERVISITS_SCHEMA = TableSchema("uservisits", [
    Column("sourceIP", ColumnType.STRING),
    Column("destURL", ColumnType.STRING),
    Column("visitDate", ColumnType.INT),
    Column("adRevenue", ColumnType.DOUBLE),
    Column("userAgent", ColumnType.STRING),
    Column("countryCode", ColumnType.STRING),
    Column("languageCode", ColumnType.STRING),
    Column("searchWord", ColumnType.STRING),
    Column("duration", ColumnType.INT),
])
