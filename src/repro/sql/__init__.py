"""A mini columnar SQL engine — the Spark SQL baseline of Table 6.

Spark SQL caches tables in a serialized column-oriented format and (with
Tungsten) keeps aggregation buffers serialized too, so its GC footprint is
a handful of column arrays regardless of row count.  This package
reproduces that baseline fused onto Deca's decomposition layer: cached
relations are lifetime-grouped page groups (one contiguous page run per
column), query operators are batch kernels over typed zero-copy views,
and the caches are charged to the unified arena, swappable to the mmap
cold tier and audited by the provenance sanitizer like any other page
group.  See ``docs/sql_engine.md``.

Example::

    engine = SqlEngine(config)
    engine.register_table("rankings", RANKINGS_SCHEMA, rows)
    engine.cache_table("rankings")
    result = engine.run(
        select(["pageURL", "pageRank"], "rankings",
               where=("pageRank", ">", 100)))
"""

from .schema import Column, ColumnType, TableSchema, table_udt
from .columnar import ColumnarTable, PagedRelation, RowMajorTable
from .engine import (
    Aggregation,
    Filter,
    Query,
    QueryResult,
    SqlEngine,
    groupby_agg,
    groupby_sum,
    select,
    top_k,
)
from .parser import parse

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "table_udt",
    "ColumnarTable",
    "PagedRelation",
    "RowMajorTable",
    "Aggregation",
    "Filter",
    "Query",
    "QueryResult",
    "SqlEngine",
    "groupby_agg",
    "groupby_sum",
    "select",
    "top_k",
    "parse",
]
