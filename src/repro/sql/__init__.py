"""A mini columnar SQL engine — the Spark SQL baseline of Table 6.

Spark SQL caches tables in a serialized column-oriented format and (with
Tungsten) keeps aggregation buffers serialized too, so its GC footprint is
a handful of column arrays regardless of row count.  This package
reproduces that baseline: schema'd tables cached column-wise in packed
byte arrays on the simulated heap, with filter and GroupBy-aggregate
operators that do the real work while charging per-row costs.

Example::

    engine = SqlEngine(config)
    engine.register_table("rankings", RANKINGS_SCHEMA, rows)
    engine.cache_table("rankings")
    result = engine.run(
        select(["pageURL", "pageRank"], "rankings",
               where=("pageRank", ">", 100)))
"""

from .schema import Column, ColumnType, TableSchema
from .columnar import ColumnarTable
from .engine import (
    Aggregation,
    Filter,
    Query,
    QueryResult,
    SqlEngine,
    groupby_agg,
    groupby_sum,
    select,
)
from .parser import parse

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "ColumnarTable",
    "Aggregation",
    "Filter",
    "Query",
    "QueryResult",
    "SqlEngine",
    "groupby_agg",
    "groupby_sum",
    "select",
    "parse",
]
