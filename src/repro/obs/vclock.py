"""The vector-clock runtime race sanitizer (the dynamic half of
``DECA401``–``DECA410``).

Where the static detector (:mod:`repro.lint.race`) proves happens-before
properties of the *source*, this module checks them on a *run*: under
``DecaConfig.sanitize`` the context owns one :class:`VClockChecker`, and
every shm/tier reclaim, cold-flag transition, arena grant and trace
relay is annotated with the actor that performed it.

The clock model mirrors the engine's concurrency structure:

* the **driver** (and the sim backend's executors, which run inside the
  driver process in program order) is one *local* actor whose events are
  totally ordered — local annotations can never race each other, so the
  sequential backend is violation-free by construction;
* each mp **worker** is a *remote* actor.  :meth:`VClockChecker.fork`
  snapshots the driver clock into the worker's initial clock (the fork
  edge); the worker process runs its own checker seeded from that
  snapshot, buffers its annotations, and ships them back inside the
  result queue message; :meth:`VClockChecker.absorb` replays them
  driver-side and merges the worker clock (the receive edge).

A violation is an operation with no happens-before edge to the event it
must be ordered against: an attach whose segment was unlinked by a clock
the attacher never saw (DECA401), a result consumed before the producing
worker's clock was joined (DECA405), a sweep while the owning actor is
still live (DECA406).  Violations are counted per rule slug, folded into
``RunMetrics.race`` and raised at ``ctx.finish()``.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional

from ..simtime import SimClock
from .tracer import Tracer

#: One slug per DECA40x rule, in rule order.
RACE_SLUGS: tuple[str, ...] = (
    "unlink-concurrent-with-attach",   # DECA401
    "refcount-outside-lock",           # DECA402
    "demote-promote-race",             # DECA403
    "borrow-evict-lost-update",        # DECA404
    "wave-barrier-bypass",             # DECA405
    "orphan-sweep-live-worker",        # DECA406
    "reentrant-spill-victim",          # DECA407
    "readonly-page-write",             # DECA408
    "trace-relay-reorder",             # DECA409
    "double-grant",                    # DECA410
)

#: A vector clock: actor id -> event count.
Clock = dict[str, int]


def clock_leq(a: Clock, b: Clock) -> bool:
    """Whether *a* happens-before-or-equals *b* (componentwise <=)."""
    return all(count <= b.get(actor, 0) for actor, count in a.items())


def clock_merge(into: Clock, other: Clock) -> None:
    """Merge *other* into *into* (componentwise max), in place."""
    for actor, count in other.items():
        if count > into.get(actor, 0):
            into[actor] = count


class VClockChecker:
    """Tracks vector clocks per actor and checks every annotated
    shm/tier/arena operation for its required happens-before edge.

    One checker runs driver-side for the whole run; mp workers run a
    second checker (seeded from the fork snapshot) whose notes are
    shipped home in the result message and replayed via :meth:`absorb`.
    """

    def __init__(self, *, actor: str = "driver",
                 snapshot: Optional[Clock] = None,
                 tracer: Optional[Tracer] = None,
                 clock: Optional[SimClock] = None,
                 pid: int = 0) -> None:
        self.actor = actor
        self.tracer = tracer
        self.clock = clock
        self.pid = pid
        init: Clock = dict(snapshot) if snapshot else {}
        init.setdefault(actor, 0)
        self.clocks: dict[str, Clock] = {actor: init}
        self.counters: dict[str, int] = {
            "forks": 0, "joins": 0, "attaches": 0, "reclaims": 0,
            "accesses": 0, "refdecs": 0, "transitions": 0,
            "pool_writes": 0, "results": 0, "sweeps": 0, "victims": 0,
            "adopts": 0, "relays": 0, "grants": 0,
        }
        for slug in RACE_SLUGS:
            self.counters[slug] = 0
        self.violations: list[dict[str, str]] = []
        # (kind, name) -> clock of the reclaim that freed the resource.
        self._reclaimed: dict[tuple[str, str], Clock] = {}
        # (kind, name) -> access clocks the reclaim must dominate.
        self._accesses: dict[tuple[str, str], list[Clock]] = {}
        # Remote actors still considered alive (fork..exit window).
        self._live: set[str] = set()
        # (kind, name) -> last cold-flag transition clock.
        self._transitions: dict[tuple[str, str], Clock] = {}
        # pool -> version counter for lost-update detection.
        self._pool_versions: dict[str, int] = {}
        # task token -> producing clock (result handoff).
        self._produced: dict[str, Clock] = {}
        # keys whose spill is in flight.
        self._swapping: set[str] = set()
        # (kind, name) -> (adler32, view) for read-only adoptions.
        self._checksums: dict[tuple[str, str], tuple[int, Any]] = {}
        # task tokens holding an active arena grant.
        self._grants: set[str] = set()

    # -- clock plumbing -------------------------------------------------------
    def _clock_of(self, actor: Optional[str]) -> Clock:
        name = actor if actor is not None else self.actor
        clock = self.clocks.get(name)
        if clock is None:
            clock = {name: 0}
            self.clocks[name] = clock
        return clock

    def _tick(self, actor: Optional[str] = None) -> Clock:
        name = actor if actor is not None else self.actor
        clock = self._clock_of(name)
        clock[name] = clock.get(name, 0) + 1
        return clock

    def fork(self, actor: str) -> Clock:
        """Fork edge: snapshot the local clock into a new remote actor.

        Returns the snapshot to ship to the child process (its checker
        is constructed with ``snapshot=``).
        """
        snapshot = dict(self._tick())
        child = dict(snapshot)
        child.setdefault(actor, 0)
        self.clocks[actor] = child
        self._live.add(actor)
        self.counters["forks"] += 1
        return snapshot

    def join(self, actor: str, clock: Optional[Clock] = None) -> None:
        """Receive edge: merge a remote actor's clock into the local one."""
        local = self._tick()
        remote = clock if clock is not None else self.clocks.get(actor)
        if remote is not None:
            clock_merge(local, remote)
            clock_merge(self._clock_of(actor), remote)
        self.counters["joins"] += 1

    def exit_actor(self, actor: str,
                   clock: Optional[Clock] = None) -> None:
        """Mark a remote actor dead (death confirmed by the backend)."""
        if clock is not None:
            self.join(actor, clock)
        self._live.discard(actor)

    # -- violations -----------------------------------------------------------
    def _violation(self, slug: str, kind: str, resource: str,
                   detail: str) -> None:
        self.counters[slug] += 1
        self.violations.append({"rule": slug, "kind": kind,
                                "resource": resource, "detail": detail})
        if self.tracer is not None:
            ts = self.clock.now_ms if self.clock is not None else 0.0
            self.tracer.instant(f"race:{slug}", "race", ts_ms=ts,
                                pid=self.pid, kind=kind,
                                resource=resource, detail=detail)

    # -- segment / extent lifecycle (DECA401) ---------------------------------
    def note_create(self, kind: str, name: str,
                    actor: Optional[str] = None) -> None:
        """A resource is (re)born; prior reclaim/access records die."""
        self._tick(actor)
        self._reclaimed.pop((kind, name), None)
        self._accesses.pop((kind, name), None)

    def note_attach(self, kind: str, name: str,
                    actor: Optional[str] = None) -> None:
        """An actor maps the resource by name; must happen-after any
        reclaim of that name (DECA401 when it does not)."""
        clock = self._tick(actor)
        self.counters["attaches"] += 1
        reclaim = self._reclaimed.get((kind, name))
        if reclaim is not None and not clock_leq(reclaim, clock):
            self._violation(
                "unlink-concurrent-with-attach", kind, name,
                f"attach by {actor or self.actor!s} has no "
                "happens-before edge to the unlink")
        self._accesses.setdefault((kind, name), []).append(dict(clock))

    def note_access(self, kind: str, name: str,
                    actor: Optional[str] = None) -> None:
        """An in-place read of the resource bytes; recorded so the
        eventual reclaim can prove it happened-after."""
        clock = self._tick(actor)
        self.counters["accesses"] += 1
        reclaim = self._reclaimed.get((kind, name))
        if reclaim is not None and not clock_leq(reclaim, clock):
            slug = ("unlink-concurrent-with-attach" if kind == "segment"
                    else "demote-promote-race")
            self._violation(slug, kind, name,
                            f"access by {actor or self.actor!s} has no "
                            "happens-before edge to the reclaim")
        self._accesses.setdefault((kind, name), []).append(dict(clock))

    def note_reclaim(self, kind: str, name: str,
                     actor: Optional[str] = None) -> None:
        """The resource's bytes die; every recorded access must
        happen-before this point."""
        clock = self._tick(actor)
        self.counters["reclaims"] += 1
        for access in self._accesses.pop((kind, name), []):
            if not clock_leq(access, clock):
                slug = ("unlink-concurrent-with-attach"
                        if kind == "segment" else "demote-promote-race")
                self._violation(
                    slug, kind, name,
                    "reclaim has no happens-before edge to a recorded "
                    "access")
                break
        self._reclaimed[(kind, name)] = dict(clock)

    # -- refcounts (DECA402) --------------------------------------------------
    def note_refdec(self, name: str, *, locked: bool = True) -> None:
        """A refcount decrement; must run under the registry lock."""
        self._tick()
        self.counters["refdecs"] += 1
        if not locked:
            self._violation("refcount-outside-lock", "segment", name,
                            "refcount mutated outside the registry lock")

    # -- cold-flag transitions (DECA403) --------------------------------------
    def _transition(self, kind: str, name: str,
                    actor: Optional[str]) -> None:
        clock = self._tick(actor)
        self.counters["transitions"] += 1
        last = self._transitions.get((kind, name))
        if last is not None and not clock_leq(last, clock):
            self._violation(
                "demote-promote-race", kind, name,
                f"cold-flag transition by {actor or self.actor!s} has "
                "no happens-before edge to the previous transition")
        self._transitions[(kind, name)] = dict(clock)

    def note_demote(self, kind: str, name: str,
                    actor: Optional[str] = None) -> None:
        self._transition(kind, name, actor)

    def note_promote(self, kind: str, name: str,
                     actor: Optional[str] = None) -> None:
        self._transition(kind, name, actor)

    # -- arena pools (DECA404) ------------------------------------------------
    def pool_read(self, pool: str) -> int:
        """Sample a pool level; returns its version for CAS-style
        validation at the eventual write."""
        self._tick()
        return self._pool_versions.get(pool, 0)

    def pool_write(self, pool: str,
                   based_on: Optional[int] = None) -> None:
        """A pool transition.  When *based_on* is given, the write is
        derived from a sampled level; a version moved in between means
        the concurrent transition is silently overwritten."""
        self._tick()
        self.counters["pool_writes"] += 1
        version = self._pool_versions.get(pool, 0)
        if based_on is not None and based_on != version:
            self._violation(
                "borrow-evict-lost-update", "pool", pool,
                f"write based on version {based_on} but the pool is at "
                f"version {version}")
        self._pool_versions[pool] = version + 1

    # -- result handoff (DECA405) ---------------------------------------------
    def note_result_produced(self, task: str,
                             actor: Optional[str] = None) -> None:
        clock = self._tick(actor)
        self._produced[task] = dict(clock)

    def note_result_consumed(self, task: str,
                             actor: Optional[str] = None) -> None:
        clock = self._tick(actor)
        self.counters["results"] += 1
        produced = self._produced.get(task)
        if produced is not None and not clock_leq(produced, clock):
            self._violation(
                "wave-barrier-bypass", "task", task,
                "result consumed with no happens-before edge to its "
                "producer (no queue get / join)")

    # -- orphan sweeps (DECA406) ----------------------------------------------
    def note_sweep(self, prefix: str,
                   owner: Optional[str] = None) -> None:
        """An orphan-segment sweep; the owning actor must be dead."""
        self._tick()
        self.counters["sweeps"] += 1
        if owner is not None and owner in self._live:
            self._violation(
                "orphan-sweep-live-worker", "segment", prefix,
                f"sweep of {prefix!r} while owner {owner!r} is live")

    # -- spill re-entrancy (DECA407) ------------------------------------------
    def swap_begin(self, key: str) -> None:
        self._tick()
        self._swapping.add(key)

    def swap_end(self, key: str) -> None:
        self._swapping.discard(key)

    def note_victim(self, key: str) -> None:
        """A spill victim was selected; it must not be mid-swap."""
        self._tick()
        self.counters["victims"] += 1
        if key in self._swapping:
            self._violation(
                "reentrant-spill-victim", "block", key,
                "victim selected while its own swap is in flight")

    # -- read-only adoption (DECA408) -----------------------------------------
    def adopt_readonly(self, kind: str, name: str, view: Any) -> None:
        """An attached view adopted read-only: checksum the bytes so a
        later verify can prove no consumer-side write happened."""
        self._tick()
        self.counters["adopts"] += 1
        self._checksums[(kind, name)] = (zlib.adler32(bytes(view)), view)

    def verify_readonly(self, kind: str, name: str) -> None:
        """Re-checksum an adopted view at detach; a mismatch is a write
        through the read-only mapping."""
        entry = self._checksums.pop((kind, name), None)
        if entry is None:
            return
        checksum, view = entry
        try:
            current = zlib.adler32(bytes(view))
        except ValueError:  # view already released — nothing to prove
            return
        if current != checksum:
            self._violation(
                "readonly-page-write", kind, name,
                "adopted read-only bytes were modified before detach")

    # -- trace relay (DECA409) ------------------------------------------------
    def note_relay(self, ts_ms: float, anchor_ms: float,
                   pid: int = 0) -> None:
        """A worker event relayed onto the driver timeline; its
        timestamp must not sort before the stage anchor."""
        self._tick()
        self.counters["relays"] += 1
        if ts_ms < anchor_ms:
            self._violation(
                "trace-relay-reorder", "event", f"pid:{pid}",
                f"relayed ts {ts_ms} precedes stage anchor {anchor_ms}")

    # -- arena grants (DECA410) -----------------------------------------------
    def note_grant(self, token: str) -> None:
        self._tick()
        self.counters["grants"] += 1
        if token in self._grants:
            self._violation(
                "double-grant", "task", token,
                "task token granted twice with no release between")
            return
        self._grants.add(token)

    def note_grant_release(self, token: str) -> None:
        self._grants.discard(token)

    # -- cross-process shipping -----------------------------------------------
    def export_notes(self, *, drain: bool = False) -> dict[str, Any]:
        """Everything a worker-side checker must ship home: its clock,
        its recorded accesses/results, and any local violations.

        With ``drain=True`` the shipped state is cleared afterwards (the
        clock stays — it is monotone), so a worker reporting once per
        task ships deltas and the driver's :meth:`absorb` never
        double-counts."""
        notes = {
            "actor": self.actor,
            "clock": dict(self._clock_of(self.actor)),
            "accesses": [
                {"kind": kind, "name": name, "clock": dict(clock)}
                for (kind, name), clocks in sorted(self._accesses.items())
                for clock in clocks
            ],
            "produced": [
                {"task": task, "clock": dict(clock)}
                for task, clock in sorted(self._produced.items())
            ],
            "violations": list(self.violations),
            "counters": dict(self.counters),
        }
        if drain:
            self._accesses.clear()
            self._produced.clear()
            self.violations = []
            for key in self.counters:
                self.counters[key] = 0
        return notes

    def absorb(self, notes: dict[str, Any]) -> None:
        """Replay a worker's shipped notes (the receive edge): record
        its accesses, check them against known reclaims, fold its
        violations/counters, and merge its clock."""
        actor = str(notes.get("actor", "worker"))
        for access in notes.get("accesses", ()):
            kind = str(access["kind"])
            name = str(access["name"])
            clock: Clock = dict(access["clock"])
            reclaim = self._reclaimed.get((kind, name))
            if reclaim is not None and not clock_leq(reclaim, clock):
                slug = ("unlink-concurrent-with-attach"
                        if kind == "segment" else "demote-promote-race")
                self._violation(
                    slug, kind, name,
                    f"worker {actor!r} accessed the resource with no "
                    "happens-before edge to its reclaim")
            self._accesses.setdefault((kind, name), []).append(clock)
        for produced in notes.get("produced", ()):
            self._produced[str(produced["task"])] = dict(produced["clock"])
        for violation in notes.get("violations", ()):
            slug = str(violation.get("rule", ""))
            if slug in self.counters:
                self.counters[slug] += 1
            self.violations.append(
                {str(k): str(v) for k, v in violation.items()})
        for counter, count in notes.get("counters", {}).items():
            key = str(counter)
            if key in self.counters and key not in RACE_SLUGS:
                self.counters[key] += int(count)
        self.join(actor, dict(notes.get("clock", {})))

    # -- reporting ------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        out = dict(self.counters)
        out["violations"] = len(self.violations)
        return out

    def check_finish(self) -> dict[str, int]:
        """End-of-run summary (the context folds it into
        ``RunMetrics.race`` and raises on violations)."""
        return self.summary()
