"""repro.obs — span/event tracing for the simulated engine.

See docs/observability.md for the event model and exporters.
"""

from .export import chrome_trace, utilization_summary, write_chrome_trace
from .tracer import DRIVER_PID, TraceEvent, Tracer

__all__ = [
    "DRIVER_PID",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "utilization_summary",
    "write_chrome_trace",
]
