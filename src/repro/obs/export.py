"""Trace exporters: Chrome ``trace_event`` JSON and text utilization.

``chrome_trace`` renders a :class:`~repro.obs.tracer.Tracer` buffer as the
JSON object Chrome's ``about://tracing`` and Perfetto load directly; the
driver and every executor appear as separate named processes.

``utilization_summary`` folds the same event stream into a per-executor
time breakdown (compute vs GC vs disk vs network vs idle) — the textual
companion of the paper's Fig. 11 cost bars.
"""

from __future__ import annotations

import json
from typing import Any

from .tracer import DRIVER_PID, PHASE_METADATA, TraceEvent, Tracer


def _round(value: float, digits: int = 3) -> float:
    """Stable rounding so exported floats format identically across runs."""
    return round(value, digits)


def _event_json(event: TraceEvent) -> dict[str, Any]:
    row: dict[str, Any] = {
        "name": event.name,
        "cat": event.category,
        "ph": event.phase,
        # Chrome expects microseconds.
        "ts": _round(event.ts_ms * 1000.0),
        "pid": event.pid,
        "tid": event.tid,
    }
    if event.phase == "X":
        row["dur"] = _round(event.dur_ms * 1000.0)
    if event.phase == "i":
        row["s"] = "t"  # thread-scoped instant
    if event.args:
        row["args"] = {
            key: (_round(value, 6) if isinstance(value, float) else value)
            for key, value in sorted(event.args.items())
        }
    return row


def _process_names(tracer: Tracer) -> list[dict[str, Any]]:
    pids = sorted({e.pid for e in tracer.events})
    rows = []
    for pid in pids:
        name = "driver" if pid == DRIVER_PID else f"executor-{pid - 1}"
        rows.append({"name": "process_name", "cat": "__metadata",
                     "ph": PHASE_METADATA, "ts": 0, "pid": pid, "tid": 0,
                     "args": {"name": name}})
    return rows


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The tracer buffer as a Chrome ``trace_event`` JSON object."""
    events = _process_names(tracer)
    events.extend(_event_json(e) for e in tracer.events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "simulated"},
    }


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialize :func:`chrome_trace` to *path* (deterministic bytes)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# Utilization summary
# ---------------------------------------------------------------------------

def _format_table(title: str, header: list[str],
                  rows: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title),
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row)) for row in rows)
    return "\n".join(lines)


def utilization_summary(tracer: Tracer, title: str = "utilization") -> str:
    """Per-executor time breakdown derived from the event stream.

    Tasks run sequentially on each simulated executor, so task-span
    durations add up to its busy time; GC, disk and network event
    durations (which occur inside tasks) are carved out of it and the
    remainder is attributed to compute.  Idle is the traced wall time not
    covered by any task span — barrier waits at stage boundaries.
    """
    pids = sorted({e.pid for e in tracer.events if e.pid != DRIVER_PID})
    wall = tracer.end_ms
    header = ["executor", "wall(ms)", "compute(ms)", "gc(ms)",
              "disk(ms)", "network(ms)", "idle(ms)", "busy%"]
    rows = []
    for pid in pids:
        events = [e for e in tracer.events if e.pid == pid]
        task_ms = sum(e.dur_ms for e in events if e.category == "task")
        gc_ms = sum(e.dur_ms for e in events if e.category == "gc")
        disk_ms = sum(e.dur_ms for e in events if e.category == "io.disk")
        net_ms = sum(e.dur_ms for e in events if e.category == "io.net")
        compute_ms = max(0.0, task_ms - gc_ms - disk_ms - net_ms)
        idle_ms = max(0.0, wall - task_ms)
        busy = 100.0 * task_ms / wall if wall > 0 else 0.0
        rows.append([f"executor-{pid - 1}", f"{wall:.3f}",
                     f"{compute_ms:.3f}", f"{gc_ms:.3f}",
                     f"{disk_ms:.3f}", f"{net_ms:.3f}",
                     f"{idle_ms:.3f}", f"{busy:.1f}%"])
    return _format_table(title, header, rows)
