"""Structured event tracing on the simulated clock.

Every engine layer emits :class:`TraceEvent` records into one per-run
:class:`Tracer`: the scheduler opens job/stage spans, executors close
task-attempt spans, the heap reports GC pauses, the cache reports block
swaps and the shuffle reports spills and fetches.  Events carry only
values derived from the simulated clocks and seeded RNGs, so two runs
with the same seed produce byte-identical traces — the property the
determinism CI job asserts on the exported JSON.

The tracer is also the run's event *bus*: listeners registered with
:meth:`Tracer.add_listener` see every event as it is emitted, which is
how the heap profiler consumes the same stream the exporters render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Synthetic "process id" for driver-side events (job/stage spans).
#: Executor events use ``pid = executor_id + 1``.
DRIVER_PID = 0

#: Chrome trace_event phase codes used here.
PHASE_COMPLETE = "X"   # a span: ts + dur
PHASE_INSTANT = "i"    # a point event
PHASE_METADATA = "M"   # process naming etc. (added by the exporter)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the simulated timeline.

    ``ts_ms``/``dur_ms`` are simulated milliseconds; the Chrome exporter
    converts them to the microseconds ``about://tracing`` expects.
    """

    name: str
    category: str          # "job" | "stage" | "task" | "gc" | "cache" | ...
    phase: str             # PHASE_COMPLETE or PHASE_INSTANT
    ts_ms: float
    dur_ms: float = 0.0
    pid: int = DRIVER_PID
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def end_ms(self) -> float:
        return self.ts_ms + self.dur_ms


TraceListener = Callable[[TraceEvent], None]


class Tracer:
    """Collects a run's trace events in emission order.

    Emission order is itself deterministic (the simulation is
    single-threaded), so the buffer — and everything exported from it —
    is reproducible bit-for-bit under a fixed seed.
    """

    def __init__(self, recording: bool = True) -> None:
        self.recording = recording
        self.events: list[TraceEvent] = []
        self._listeners: list[TraceListener] = []

    def add_listener(self, listener: TraceListener) -> None:
        """Subscribe to the event stream (listeners see every emission,
        even when buffer recording is off)."""
        self._listeners.append(listener)

    # -- emission -------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        for listener in self._listeners:
            listener(event)
        if self.recording:
            self.events.append(event)

    def complete(self, name: str, category: str, ts_ms: float,
                 dur_ms: float, pid: int = DRIVER_PID, tid: int = 0,
                 **args: Any) -> None:
        """Emit a finished span (Chrome "X" event)."""
        self.emit(TraceEvent(name=name, category=category,
                             phase=PHASE_COMPLETE, ts_ms=ts_ms,
                             dur_ms=dur_ms, pid=pid, tid=tid, args=args))

    def instant(self, name: str, category: str, ts_ms: float,
                pid: int = DRIVER_PID, tid: int = 0, **args: Any) -> None:
        """Emit a point event (Chrome "i" event)."""
        self.emit(TraceEvent(name=name, category=category,
                             phase=PHASE_INSTANT, ts_ms=ts_ms,
                             pid=pid, tid=tid, args=args))

    # -- queries --------------------------------------------------------------
    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    @property
    def end_ms(self) -> float:
        """Timestamp of the latest event end (the traced wall time)."""
        if not self.events:
            return 0.0
        return max(e.end_ms for e in self.events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"Tracer({len(self.events)} events, "
                f"recording={self.recording})")
