"""Feature-vector datasets for LR and KMeans (paper §6.2).

Two regimes from the paper:

* randomly generated **10-dimension** vectors (the 40–200 GB sweeps of
  Fig. 9(b)/(c)), where object headers dominate the footprint and Deca's
  compaction shines;
* **4096-dimension** vectors modelled on the Amazon image dataset
  (Fig. 9(d)), where the payload dwarfs the headers and the cache-size gap
  nearly vanishes.
"""

from __future__ import annotations

import random

from ..errors import DecaError

LabeledPoint = tuple[float, tuple[float, ...]]


def labeled_points(count: int, dimensions: int = 10,
                   seed: int = 29) -> list[LabeledPoint]:
    """Binary-labeled points around two separated Gaussian blobs.

    The separation makes logistic regression converge, so iteration counts
    in the benchmarks measure steady-state cost, not numerical drift.
    """
    if count < 0:
        raise DecaError("count cannot be negative")
    if dimensions < 1:
        raise DecaError("dimensions must be >= 1")
    rng = random.Random(seed)
    data: list[LabeledPoint] = []
    for _ in range(count):
        label = 1.0 if rng.random() < 0.5 else 0.0
        shift = 1.0 if label > 0.5 else -1.0
        features = tuple(rng.gauss(shift, 1.0) for _ in range(dimensions))
        data.append((label, features))
    return data


def clustered_points(count: int, dimensions: int = 10, clusters: int = 8,
                     seed: int = 31) -> list[tuple[float, ...]]:
    """Unlabeled points around *clusters* centers (the KMeans input)."""
    if count < 0:
        raise DecaError("count cannot be negative")
    if dimensions < 1 or clusters < 1:
        raise DecaError("dimensions and clusters must be >= 1")
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(-10.0, 10.0) for _ in range(dimensions))
               for _ in range(clusters)]
    data = []
    for _ in range(count):
        center = centers[rng.randrange(clusters)]
        data.append(tuple(c + rng.gauss(0.0, 0.8) for c in center))
    return data
