"""RandomWriter-style text for WordCount (paper §6: 10M/100M unique keys).

The WC experiments vary two parameters: total data size and the number of
unique keys — the latter controls the hash-based shuffle buffer's size
under eager aggregation, which is where Deca's segment reuse pays off
(Fig. 8(b)).  :func:`random_words` exposes both knobs.
"""

from __future__ import annotations

import random
import string

from ..errors import DecaError

_ALPHABET = string.ascii_lowercase


def _word_for(index: int, min_len: int, max_len: int,
              rng: random.Random) -> str:
    """A deterministic word for key *index* (base-26 with random tail)."""
    digits = []
    n = index
    while True:
        digits.append(_ALPHABET[n % 26])
        n //= 26
        if n == 0:
            break
    word = "".join(reversed(digits))
    pad = rng.randint(min_len, max_len)
    if len(word) < pad:
        filler = "".join(rng.choice(_ALPHABET)
                         for _ in range(pad - len(word)))
        word = word + filler
    return word


def random_words(num_words: int, unique_keys: int,
                 min_len: int = 4, max_len: int = 10,
                 seed: int = 13) -> list[str]:
    """Generate *num_words* words drawn from *unique_keys* distinct keys.

    Key frequencies are uniform, matching Hadoop RandomWriter's output.
    The vocabulary is generated once so every occurrence of key ``i`` is
    the identical string.
    """
    if num_words < 0:
        raise DecaError("num_words cannot be negative")
    if unique_keys < 1:
        raise DecaError("unique_keys must be >= 1")
    if min_len < 1 or max_len < min_len:
        raise DecaError("need 1 <= min_len <= max_len")
    rng = random.Random(seed)
    vocabulary = [_word_for(i, min_len, max_len, rng)
                  for i in range(unique_keys)]
    return [vocabulary[rng.randrange(unique_keys)]
            for _ in range(num_words)]
