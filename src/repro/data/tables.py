"""The rankings / uservisits tables for the SQL comparison (§6.6).

The paper samples the Common Crawl document corpus using the Big Data
Benchmark's two-table schema:

* ``rankings(pageURL, pageRank, avgDuration)``
* ``uservisits(sourceIP, destURL, visitDate, adRevenue, userAgent,
  countryCode, languageCode, searchWord, duration)``

and runs a filter query over rankings and a GroupBy-SUM over uservisits'
``SUBSTR(sourceIP, 1, 5)``.  These generators produce scaled synthetic
rows with matched column shapes: Zipf-ish pageRanks and dotted-quad source
IPs whose 5-character prefixes form the aggregation keys.
"""

from __future__ import annotations

import random

from ..errors import DecaError

RankingRow = tuple[str, int, int]
UserVisitRow = tuple[str, str, int, float, str, str, str, str, int]


def rankings_table(rows: int, seed: int = 59) -> list[RankingRow]:
    """Synthetic ``rankings`` rows: (pageURL, pageRank, avgDuration)."""
    if rows < 0:
        raise DecaError("rows cannot be negative")
    rng = random.Random(seed)
    out: list[RankingRow] = []
    for i in range(rows):
        url = f"url{i:08d}.example.com/page"
        # Heavy-tailed pageRank so the >100 filter keeps a small slice.
        rank = int(rng.paretovariate(1.2) * 10)
        duration = rng.randint(1, 60)
        out.append((url, rank, duration))
    return out


def uservisits_table(rows: int, ip_prefixes: int = 500,
                     seed: int = 61) -> list[UserVisitRow]:
    """Synthetic ``uservisits`` rows.

    *ip_prefixes* controls the cardinality of ``SUBSTR(sourceIP, 1, 5)``,
    i.e. the number of groups Query 2 aggregates into.
    """
    if rows < 0:
        raise DecaError("rows cannot be negative")
    if ip_prefixes < 1:
        raise DecaError("ip_prefixes must be >= 1")
    rng = random.Random(seed)
    agents = ["Mozilla/5.0", "Safari/13.1", "Chrome/88.0", "curl/7.64"]
    countries = ["USA", "CHN", "DNK", "GBR", "DEU"]
    languages = ["en", "zh", "da", "de", "fr"]
    words = ["vldb", "spark", "deca", "memory", "gc"]
    out: list[UserVisitRow] = []
    for i in range(rows):
        # First octet pinned to 3 digits so the 5-char prefix is stable
        # (e.g. "101.2"), giving a controllable group count.
        first = 100 + (rng.randrange(ip_prefixes) // 10)
        second = rng.randrange(ip_prefixes) % 100
        ip = f"{first}.{second}.{rng.randrange(256)}.{rng.randrange(256)}"
        url = f"url{rng.randrange(max(1, rows // 10)):08d}.example.com"
        date = 20090000 + rng.randrange(10000)
        revenue = rng.random() * 10.0
        out.append((
            ip, url, date, revenue,
            agents[rng.randrange(len(agents))],
            countries[rng.randrange(len(countries))],
            languages[rng.randrange(len(languages))],
            words[rng.randrange(len(words))],
            rng.randint(1, 600),
        ))
    return out
