"""Power-law graph generation for PageRank / ConnectedComponent (§6.3).

The paper uses three real graphs — LiveJournal (4.8M vertices / 68M
edges), WebBase (118M / 1B) and a 60 GB HiBench-generated graph (602M /
2B) — plus Pokec (1.6M / 30M) in the microbenchmark.  We generate scaled
stand-ins with the same qualitative structure: heavy-tailed out-degrees
(preferential attachment), so per-vertex adjacency lists vary wildly in
length — the property that makes them VSTs in the shuffle buffer and RFSTs
once cached (Fig. 7(b)).

``GRAPH_PRESETS`` scales the three paper graphs down by ~1000x while
keeping their vertex:edge ratios.
"""

from __future__ import annotations

import random

from ..errors import DecaError

Edge = tuple[int, int]

# name -> (vertices, edges), ~1000x scaled from Table 2.
GRAPH_PRESETS: dict[str, tuple[int, int]] = {
    "LiveJournal": (4_800, 68_000),
    "WebBase": (23_600, 200_000),
    "HiBench": (60_200, 400_000),
    "Pokec": (1_600, 30_000),
}


def power_law_graph(num_vertices: int, num_edges: int,
                    seed: int = 41) -> list[Edge]:
    """A directed multigraph with preferential-attachment in-degrees.

    Every vertex gets at least one outgoing edge (so PageRank has no
    dangling-source artifacts at tiny scales); targets are chosen
    preferentially, yielding the heavy-tailed degree distribution of web
    and social graphs.
    """
    if num_vertices < 2:
        raise DecaError("need at least two vertices")
    if num_edges < num_vertices:
        raise DecaError("need at least one edge per vertex")
    rng = random.Random(seed)
    # Repeated-target list implements preferential attachment cheaply.
    targets: list[int] = [0, 1]
    edges: list[Edge] = []
    for src in range(num_vertices):
        dst = targets[rng.randrange(len(targets))]
        if dst == src:
            dst = (src + 1) % num_vertices
        edges.append((src, dst))
        targets.append(dst)
        targets.append(src)
    for _ in range(num_edges - num_vertices):
        src = rng.randrange(num_vertices)
        dst = targets[rng.randrange(len(targets))]
        if dst == src:
            dst = (dst + 1) % num_vertices
        edges.append((src, dst))
        targets.append(dst)
    return edges


def graph_preset(name: str, seed: int = 41) -> list[Edge]:
    """Generate one of the paper's graphs at reproduction scale."""
    try:
        vertices, edges = GRAPH_PRESETS[name]
    except KeyError:
        raise DecaError(
            f"unknown graph preset {name!r}; "
            f"choose from {sorted(GRAPH_PRESETS)}") from None
    return power_law_graph(vertices, edges, seed=seed)
