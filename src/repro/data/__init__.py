"""Synthetic dataset generators standing in for the paper's inputs.

The paper's datasets are tens-to-hundreds of gigabytes (Hadoop RandomWriter
text, Amazon image feature vectors, LiveJournal/WebBase/HiBench graphs, a
Common Crawl sample); none are shippable here, so each generator produces a
scaled-down synthetic equivalent with the same *distributional* properties
that drive the experiments — key cardinality for WC, dimensionality for
LR/KMeans, power-law degrees for PR/CC, and the rankings/uservisits schema
for the SQL queries.
"""

from .text import random_words
from .vectors import labeled_points, clustered_points
from .graphs import graph_preset, power_law_graph, GRAPH_PRESETS
from .tables import rankings_table, uservisits_table

__all__ = [
    "random_words",
    "labeled_points",
    "clustered_points",
    "graph_preset",
    "power_law_graph",
    "GRAPH_PRESETS",
    "rankings_table",
    "uservisits_table",
]
