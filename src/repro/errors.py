"""Exception hierarchy for the Deca reproduction.

All library errors derive from :class:`DecaError` so that callers can catch
one base type.  Subsystems raise the most specific subclass available; none
of these wrap arbitrary exceptions silently.
"""

from __future__ import annotations


class DecaError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(DecaError):
    """An invalid or inconsistent :class:`repro.config.DecaConfig`."""


class HeapError(DecaError):
    """Base class for simulated-heap failures."""


class OutOfMemoryError(HeapError):
    """The simulated heap cannot satisfy an allocation even after a full GC.

    Mirrors ``java.lang.OutOfMemoryError`` in the simulated JVM.
    """


class AllocationError(HeapError):
    """An allocation request was malformed (negative size, dead group, ...)."""


class AnalysisError(DecaError):
    """Base class for UDT-classification / code-analysis failures."""


class TypeGraphError(AnalysisError):
    """A malformed UDT definition (unknown field type, bad type-set, ...)."""


class IRError(AnalysisError):
    """A malformed method body in the mini-IR."""


class MemoryLayoutError(DecaError):
    """A UDT cannot be laid out into bytes (e.g. it is a VST)."""


class PageError(DecaError):
    """Base class for page / page-group misuse."""


class PageOverflowError(PageError):
    """A write would run past the end of the allocated segment."""


class PageReclaimedError(PageError):
    """An access through a page-info whose page group was already reclaimed."""


class ContainerError(DecaError):
    """Misuse of a data container (double release, write after seal, ...)."""


class OptimizerError(DecaError):
    """The Deca optimizer could not produce a plan for a job."""


class ExecutionError(DecaError):
    """A job failed while executing on the mini Spark engine."""


class ShuffleError(ExecutionError):
    """A shuffle read/write failure."""


class FaultError(ExecutionError):
    """Base class for injected / recovered failures (fault tolerance)."""


class TaskKilledError(FaultError):
    """A task attempt died (injected kill or executor-side failure)."""

    def __init__(self, stage_id: int, partition: int, attempt: int) -> None:
        super().__init__(
            f"task {stage_id}.{partition} (attempt {attempt}) killed")
        self.stage_id = stage_id
        self.partition = partition
        self.attempt = attempt


class ExecutorLostError(FaultError):
    """A whole executor process crashed mid-task.

    Its cache blocks and shuffle map outputs are gone; the scheduler must
    invalidate them and re-run the lineage that produced them.
    """

    def __init__(self, executor_id: int) -> None:
        super().__init__(f"executor {executor_id} lost")
        self.executor_id = executor_id


class FetchFailedError(FaultError):
    """A shuffle block could not be fetched (missing or corrupt).

    Carries the coordinates of the map output that must be regenerated
    before the reduce task can be retried — Spark's ``FetchFailed``.
    """

    def __init__(self, shuffle_id: int, map_part: int,
                 reduce_part: int, reason: str = "corrupt") -> None:
        super().__init__(
            f"fetch of shuffle {shuffle_id} block "
            f"({map_part}, {reduce_part}) failed: {reason}")
        self.shuffle_id = shuffle_id
        self.map_part = map_part
        self.reduce_part = reduce_part
        self.reason = reason


class NondeterministicUdfError(FaultError):
    """ClosureGuard (strict mode) refused to re-run a nondeterministic UDF.

    Speculation and lineage re-execution assume every UDF is a pure
    function of its input partition; when the closure analyzer proves
    otherwise, re-running the task could commit a *different* result
    than the original attempt.
    """

    def __init__(self, rdd_name: str, udf: str, action: str) -> None:
        super().__init__(
            f"refusing {action} for RDD {rdd_name!r}: UDF {udf!r} is "
            "statically nondeterministic (closure_guard=strict)")
        self.rdd_name = rdd_name
        self.udf = udf
        self.action = action


class StageAbortError(FaultError):
    """A task exhausted ``max_task_failures`` attempts; the stage aborts."""

    def __init__(self, stage_id: int, partition: int,
                 failures: int, last: Exception) -> None:
        super().__init__(
            f"stage {stage_id} aborted: task {partition} failed "
            f"{failures} times; last failure: {last}")
        self.stage_id = stage_id
        self.partition = partition
        self.failures = failures
        self.last = last


class CacheError(ExecutionError):
    """A cache-manager failure (unknown block, bad storage level, ...)."""


class SanitizerError(DecaError):
    """The runtime alias sanitizer observed at least one provenance
    violation (use-after-free extent, use-after-unlink segment, escaped
    adoption, leaked transient borrow, ...).

    Raised from ``DecaContext.finish()`` when ``DecaConfig.sanitize`` is
    on, so corrupting aliasing bugs fail the run loudly instead of
    yielding silently wrong results.  The per-rule violation counts are
    attached as :attr:`summary`.
    """

    def __init__(self, summary: dict[str, int]) -> None:
        shown = ", ".join(
            f"{name}={count}" for name, count in sorted(summary.items())
            if count)
        super().__init__(f"sanitizer detected provenance violations: {shown}")
        self.summary = summary


class SqlError(DecaError):
    """An error in the mini columnar SQL engine (Table 6 baseline)."""


class SchemaError(SqlError):
    """A malformed schema or a row that does not match its schema."""
