"""Cross-backend test-matrix configuration.

The CI ``backend-matrix`` job re-runs the tier-1 suite with
``REPRO_EXECUTION_BACKEND=mp`` so every semantic test also executes on
the real multiprocess backend (docs/execution_backends.md).  Most tests
pass unchanged — same results, same scheduler decisions — but a known
set asserts *simulation-only observables*:

* simulated cost models (GC pauses, spill/swap charges, backoff waits on
  the simulated clock) — the mp backend reports real wall time instead;
* driver-side closure side effects (``foreach`` into a local list,
  compute counters) — under mp the closure runs in a forked worker, so
  the driver copy is never mutated (that is the point of the backend);
* executor-local cache/heap introspection — mp keeps cache blocks in
  the driver's backend table as shared segments, not on sim executors.

Those are skipped *by name* here, centrally, so the matrix job stays an
honest "everything else must pass" gate and the list is auditable.
"""

import os

import pytest

#: Whole modules that exist to pin down the simulated cost model (GC,
#: swap, spill, retry backoff, trace timestamps).  Module -> reason.
MP_SKIP_MODULES = {
    "test_cache_swap_details.py":
        "asserts simulated heap/swap cost accounting",
    "test_closure_guard.py":
        "asserts sim-path speculation/retry decisions on simulated clocks",
    "test_fault_tolerance.py":
        "asserts simulated recovery costs (mp fault path is covered by "
        "tests/test_exec_backend.py)",
    "test_obs_tracing.py":
        "asserts simulated-clock trace timestamps (mp traces are covered "
        "by tests/test_exec_trace.py)",
    "test_spark_cache_shuffle.py":
        "asserts sim executor cache/heap/spill internals",
}

#: Individual tests inside otherwise mp-clean modules.  Nodeid suffix
#: ("module::Class::test") -> reason.
MP_SKIP_TESTS = {
    "test_apps_integration.py::TestLogisticRegression::"
    "test_cached_bytes_reported":
        "cached_bytes counts sim executor blocks",
    "test_core_fusion.py::TestFusionCorrectness::"
    "test_filter_short_circuits":
        "counts operator calls via a driver-side closure side effect",
    "test_core_fusion.py::TestFusionBoundaries::"
    "test_cache_point_is_a_barrier":
        "counts compute calls via a driver-side closure side effect",
    "test_memory_unified.py::TestUnifiedEndToEnd::"
    "test_unified_mode_emits_memory_events":
        "expects sim executor arena events during task execution",
    "test_spark_context_misc.py::TestRunMetrics::"
    "test_cached_bytes_reported_per_rdd":
        "cached_bytes counts sim executor blocks",
    "test_spark_rdd.py::TestActions::test_reduce_empty_raises":
        "worker exceptions surface as ExecutionError, not the original",
    "test_spark_rdd.py::TestActions::test_foreach":
        "foreach side effects land in the worker process, not the driver",
    "test_spark_rdd.py::TestCaching::test_cache_blocks_exist_after_first_use":
        "cache blocks live in the backend's shared-segment table",
}


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_EXECUTION_BACKEND") != "mp":
        return
    for item in items:
        module = os.path.basename(str(item.fspath))
        reason = MP_SKIP_MODULES.get(module)
        if reason is None:
            for suffix, why in MP_SKIP_TESTS.items():
                if item.nodeid.endswith(suffix):
                    reason = why
                    break
        if reason is not None:
            item.add_marker(pytest.mark.skip(
                reason=f"sim-only observable under mp backend: {reason}"))
