"""Table 6: the two exploratory SQL queries — Spark vs Spark SQL vs Deca.

Query 1 (a selective filter over a small table): all three systems are
close, GC differences are noise.  Query 2 (GroupBy-SUM over the large
table): row-object Spark pays heavy GC; Spark SQL's columnar cache and
Deca's pages both cut execution time and shrink the cache severalfold.
"""

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import rankings_table, uservisits_table
from repro.apps.sql_queries import (
    run_query1,
    run_query1_sparksql,
    run_query2,
    run_query2_sparksql,
    run_sql_suite,
)
from repro.bench.report import format_table, write_result

RANKINGS_ROWS = 6_000
USERVISITS_ROWS = 20_000


def _config(mode):
    # Sized so the row-object uservisits cache overfills the old
    # generation (the paper's Query 2 run swaps 23 GB of its cache).
    return DecaConfig(mode=mode, heap_bytes=int(4.5 * MB), num_executors=2,
                      tasks_per_executor=2, page_bytes=256 * 1024,
                      young_fraction=0.25, storage_fraction=0.9,
                      shuffle_fraction=0.1)


def test_table6_sql(once):
    def scenario():
        rankings = rankings_table(RANKINGS_ROWS)
        visits = uservisits_table(USERVISITS_ROWS)
        out = {}
        for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
            out[("Query1", mode.value)] = run_query1(rankings,
                                                     _config(mode))
            out[("Query2", mode.value)] = run_query2(visits,
                                                     _config(mode))
        out[("Query1", "spark-sql")] = run_query1_sparksql(
            rankings, _config(ExecutionMode.SPARK))
        out[("Query2", "spark-sql")] = run_query2_sparksql(
            visits, _config(ExecutionMode.SPARK))
        suite = run_sql_suite(rankings, visits,
                              _config(ExecutionMode.SPARK))
        for name, result in suite.items():
            out[(f"Suite:{name}", "spark-sql")] = result
        return out

    out = once(scenario)

    def stats(key):
        run = out[key]
        if hasattr(run, "metrics"):  # an RDD AppRun
            return (run.wall_s, run.gc_s,
                    run.cached_bytes / MB + run.swapped_cache_bytes / MB)
        return (run.wall_ms / 1000.0, run.gc_pause_ms / 1000.0,
                run.cached_bytes / MB)

    body = []
    for (query, system) in out:
        exec_s, gc_s, cache_mb = stats((query, system))
        body.append([query, system, exec_s, gc_s, cache_mb])
    table = format_table(
        "Table 6: exploratory SQL queries",
        ["query", "system", "exec(s)", "gc(s)", "cache(MB)"], body)
    print(table)
    write_result("table6_sql", table)

    # Query 1: all three perform comparably (small input, simple filter).
    q1 = {system: stats(("Query1", system))
          for system in ("spark", "spark-sql", "deca")}
    assert q1["deca"][0] <= 1.5 * q1["spark"][0]
    # Row-object Spark caches the table severalfold larger.
    assert q1["spark"][2] > 1.5 * q1["deca"][2]
    assert q1["spark"][2] > 1.5 * q1["spark-sql"][2]

    # Query 2: Deca and Spark SQL both cut execution time against Spark
    # (paper: >50 %) with far lower GC time.
    q2 = {system: stats(("Query2", system))
          for system in ("spark", "spark-sql", "deca")}
    assert q2["deca"][0] < 0.7 * q2["spark"][0]
    assert q2["spark-sql"][0] < 0.7 * q2["spark"][0]
    assert q2["deca"][1] < 0.3 * q2["spark"][1]
    assert q2["spark-sql"][1] < 0.3 * q2["spark"][1]
    # And their caches are severalfold smaller.
    assert q2["spark"][2] > 1.5 * q2["deca"][2]

    # The TPC-H-flavoured suite runs on one shared engine: the scan
    # keeps every row, top-k keeps exactly k.
    assert len(out[("Suite:scan", "spark-sql")].rows) == RANKINGS_ROWS
    assert len(out[("Suite:topk", "spark-sql")].rows) == 10
