"""Shared benchmark plumbing.

Every benchmark runs its scenario exactly once (``rounds=1``): the numbers
of interest are *simulated* milliseconds collected inside the run, not the
host's wall clock, so repeating a deterministic simulation would only waste
time.  Each benchmark prints and persists the rows its paper counterpart
reports (see ``benchmarks/results/`` after a run).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a scenario a single time under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return runner
