"""Ablation: page size (§2.3, §4.3.1).

The paper: "the size of each byte array should not be too small or too
large, otherwise it would incur high GC overheads or large unused memory
spaces."  We sweep the page size on the LR-80GB point and report the GC
time (more pages → more objects for the collector) and the allocation
waste (bigger last pages → more unused tail before trimming kicks in,
plus coarser eviction units).
"""

from repro.config import ExecutionMode
from repro.bench.harness import run_lr_point
from repro.bench.report import format_table, write_result

PAGE_SIZES = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)


def test_ablation_page_size(once):
    def scenario():
        rows = []
        for page_bytes in PAGE_SIZES:
            point = run_lr_point("80GB", ExecutionMode.DECA,
                                 iterations=3, page_bytes=page_bytes)
            run = point.extra["run"]
            pages = sum(e.memory_manager.page_count
                        for e in run.ctx.executors)
            used = sum(e.memory_manager.used_bytes
                       for e in run.ctx.executors)
            allocated = sum(e.memory_manager.allocated_bytes
                            for e in run.ctx.executors)
            rows.append((page_bytes, point, pages, used, allocated))
        return rows

    rows = once(scenario)
    table = format_table(
        "Ablation: Deca page size (LR 80GB)",
        ["page(KB)", "exec(s)", "gc(s)", "pages", "waste(KB)"],
        [[size // 1024, point.exec_s, point.gc_s, pages,
          (allocated - used) // 1024]
         for size, point, pages, used, allocated in rows])
    print(table)
    write_result("ablation_page_size", table)

    by_size = {size: (point, pages, used, allocated)
               for size, point, pages, used, allocated in rows}
    smallest = by_size[PAGE_SIZES[0]]
    largest = by_size[PAGE_SIZES[-1]]
    # Smaller pages mean strictly more page objects on the heap...
    assert smallest[1] > 4 * largest[1]
    # ...while every size still keeps GC negligible at this scale and
    # correctness identical.
    for size, (point, pages, used, allocated) in by_size.items():
        assert point.gc_s < 0.05, size
    # Waste (allocated-but-unused bytes) never exceeds one page per block.
    for size, (point, pages, used, allocated) in by_size.items():
        blocks = 8  # LR_PARTITIONS
        assert allocated - used <= (size + 4096) * blocks, size
