"""Fault-recovery benchmark: WordCount under injected failures.

The paper's memory-management claims only matter if the engine keeps
Spark's fault-tolerance contract (§2.1: RDD lineage makes lost partitions
recomputable).  This benchmark runs the smallest Fig. 8 WordCount point
with the standard fault plan — probabilistic task kills plus one scripted
executor crash — and reports what recovery cost:

* correctness — the faulted run's counts equal the fault-free baseline's;
* determinism — two runs with the same fault seed serialize byte-identical
  metrics JSON (the property the CI determinism job asserts);
* overhead — wall-time paid for retries, backoff, the executor restart
  and lineage re-execution.

The machine-readable trajectory lands in
``benchmarks/results/BENCH_fault_recovery.json``.
"""

import json

from repro.config import ExecutionMode
from repro.bench.harness import fault_recovery_faults, \
    run_fault_recovery_point
from repro.bench.report import format_table, write_json_result, \
    write_result


def test_fault_recovery_wc(once):
    """WC completes correctly and deterministically under faults."""

    def scenario():
        faults = fault_recovery_faults(seed=17, task_kill_prob=0.05)
        first = run_fault_recovery_point("50GB", "10M",
                                         ExecutionMode.SPARK,
                                         faults=faults)
        second = run_fault_recovery_point("50GB", "10M",
                                          ExecutionMode.SPARK,
                                          faults=faults)
        return first, second

    first, second = once(scenario)

    # Correctness: injected faults never change the answer.
    assert first.extra["correct"]
    assert second.extra["correct"]

    # The scripted executor crash happened and lineage was re-executed.
    recovery = first.extra["recovery"]
    assert recovery["executors_lost"] >= 1
    assert recovery["recomputed_partitions"] >= 1
    assert recovery["task_retries"] >= 1
    assert recovery["recovery_ms"] > 0.0

    # Recovery costs simulated time: the faulted run is slower than its
    # fault-free baseline.
    assert first.exec_s > first.extra["baseline_exec_s"]

    # Determinism: both runs serialize byte-identical metrics JSON.
    t1 = json.dumps(first.extra["trajectory"], sort_keys=True)
    t2 = json.dumps(second.extra["trajectory"], sort_keys=True)
    assert t1 == t2

    table = format_table(
        "Fault recovery: WC 50GB/10M under injected failures",
        ["metric", "value"],
        [["baseline exec(s)", first.extra["baseline_exec_s"]],
         ["faulted exec(s)", first.exec_s],
         ["overhead(s)", first.extra["recovery_overhead_s"]],
         *[[key, value] for key, value in recovery.items()]])
    print(table)
    write_result("fault_recovery", table)
    write_json_result("BENCH_fault_recovery", {
        "benchmark": "fault_recovery",
        "app": "WC",
        "point": first.label,
        "mode": first.mode,
        "seed": 17,
        "task_kill_prob": 0.05,
        "correct": first.extra["correct"],
        "deterministic": t1 == t2,
        "baseline_exec_s": round(first.extra["baseline_exec_s"], 6),
        "faulted_exec_s": round(first.exec_s, 6),
        "recovery_overhead_s": round(
            first.extra["recovery_overhead_s"], 6),
        "recovery": recovery,
        "trajectory": first.extra["trajectory"],
    })
