"""Table 5: the controlled single-machine microbenchmark.

A single executor emulates the paper's multi-threaded standalone harness:
LR (caching only) and PR (caching + shuffling), each with a small heap
(GC-bound) and a large heap (GC-free), under Spark / Deca / SparkSer —
plus the per-object serialization costs at the bottom of the table.

Expected shapes (paper Table 5):
* large heap: Deca ≈ Spark for LR (no GC to save), SparkSer much slower
  (deserialization); Deca clearly faster than Spark for PR (no boxed
  access in the shuffle path);
* small heap: Spark becomes GC-bound; Deca barely changes;
* Kryo deserialization costs several times its serialization, while Deca
  pays a Kryo-like write cost and reads for free.
"""

from repro.config import DecaConfig, ExecutionMode, MB, SerializerCosts
from repro.data import labeled_points, power_law_graph
from repro.apps.logistic_regression import run_logistic_regression
from repro.apps.pagerank import run_pagerank
from repro.bench.report import format_table, write_result

MODES = (ExecutionMode.SPARK, ExecutionMode.DECA, ExecutionMode.SPARK_SER)


def _config(mode, heap_mb):
    return DecaConfig(mode=mode, heap_bytes=int(heap_mb * MB),
                      num_executors=1, tasks_per_executor=4,
                      page_bytes=128 * 1024, young_fraction=0.25,
                      storage_fraction=0.9, shuffle_fraction=0.1)


def _lr(mode, heap_mb):
    data = labeled_points(20_000, 10)
    return run_logistic_regression(data, _config(mode, heap_mb),
                                   iterations=4, num_partitions=4)


def _pr(mode, heap_mb):
    edges = power_law_graph(1_600, 15_000)
    return run_pagerank(edges, _config(mode, heap_mb), iterations=3,
                        num_partitions=4)


def test_table5_micro(once):
    def scenario():
        out = {}
        for app, runner, small, large in (("LR", _lr, 4, 64),
                                          ("PR", _pr, 2.5, 32)):
            for heap_label, heap_mb in (("small", small),
                                        ("large", large)):
                for mode in MODES:
                    out[(app, heap_label, mode)] = runner(mode, heap_mb)
        return out

    out = once(scenario)

    body = []
    for (app, heap, mode), run in out.items():
        body.append([app, heap, mode.value, run.wall_s, run.gc_s])
    costs = SerializerCosts()
    table = format_table(
        "Table 5: single-machine microbenchmark",
        ["app", "heap", "mode", "exec(s)", "gc(s)"], body)
    footer = format_table(
        "Per-object serialization costs (ms, simulated)",
        ["operation", "Deca", "Kryo"],
        [["serialize", costs.deca_write_per_object_ms,
          costs.kryo_ser_per_object_ms],
         ["deserialize", costs.deca_read_per_object_ms,
          costs.kryo_deser_per_object_ms]])
    print(table)
    print(footer)
    write_result("table5_micro", table + "\n\n" + footer)

    # Large heap, LR: Deca ~= Spark; SparkSer pays deserialization.
    lr_large = {mode: out[("LR", "large", mode)] for mode in MODES}
    assert lr_large[ExecutionMode.DECA].wall_s <= \
        1.15 * lr_large[ExecutionMode.SPARK].wall_s
    assert lr_large[ExecutionMode.SPARK_SER].wall_s > \
        1.5 * lr_large[ExecutionMode.SPARK].wall_s

    # Small heap, LR: Spark is GC-bound; Deca keeps GC near zero.
    lr_small = {mode: out[("LR", "small", mode)] for mode in MODES}
    assert lr_small[ExecutionMode.SPARK].gc_s > \
        5 * lr_small[ExecutionMode.DECA].gc_s
    assert lr_small[ExecutionMode.SPARK].wall_s > \
        2 * lr_small[ExecutionMode.DECA].wall_s

    # PR, large heap: Deca beats Spark even without GC pressure (no boxed
    # access, no shuffle serialization).
    pr_large = {mode: out[("PR", "large", mode)] for mode in MODES}
    assert pr_large[ExecutionMode.DECA].wall_s < \
        pr_large[ExecutionMode.SPARK].wall_s

    # Kryo deserialization is several times its serialization; Deca reads
    # are free.
    assert costs.kryo_deser_per_object_ms > 5 * costs.kryo_ser_per_object_ms
    assert costs.deca_read_per_object_ms == 0.0
