"""Ablation: how much of Deca's win needs the *global* analysis (§3.3).

The local classifier alone leaves ``LabeledPoint`` a VST (its ``features``
field is non-final), so local-only Deca cannot decompose the cache at all
— it degenerates to Spark.  Only the global refinement (init-only fields +
fixed-length arrays) unlocks the decomposition.  This is the paper's
motivation for Algorithms 2–4.
"""

import dataclasses

from repro.config import ExecutionMode
from repro.bench.harness import run_lr_point
from repro.bench.report import format_table, write_result


def test_ablation_classification(once):
    def scenario():
        full = run_lr_point("80GB", ExecutionMode.DECA, iterations=3)
        spark = run_lr_point("80GB", ExecutionMode.SPARK, iterations=3)

        # Local-only Deca: strip the stage IR so the optimizer has no
        # call graph to refine with — the local VST verdict stands.
        import repro.apps.logistic_regression as lr_app
        original = lr_app.labeled_point_udt_info

        def local_only(dimensions):
            info = original(dimensions)
            return dataclasses.replace(info, entry_method=None,
                                       _callgraph=None)

        lr_app.labeled_point_udt_info = local_only
        try:
            local = run_lr_point("80GB", ExecutionMode.DECA, iterations=3)
        finally:
            lr_app.labeled_point_udt_info = original
        return spark, local, full

    spark, local, full = once(scenario)

    table = format_table(
        "Ablation: local-only vs global classification (LR 80GB)",
        ["variant", "exec(s)", "gc(s)", "cache(MB)"],
        [["spark", spark.exec_s, spark.gc_s, spark.cached_mb],
         ["deca (local only)", local.exec_s, local.gc_s, local.cached_mb],
         ["deca (global)", full.exec_s, full.gc_s, full.cached_mb]])
    print(table)
    write_result("ablation_classification", table)

    # Local-only classification cannot decompose LabeledPoint: the run
    # behaves like Spark (object cache, full GC storms).
    assert local.gc_s > 0.5 * spark.gc_s
    assert local.cached_mb > 1.2 * full.cached_mb
    # The global analysis delivers the actual win.
    assert full.exec_s < 0.5 * local.exec_s
    assert full.gc_s < 0.05 * local.gc_s
