"""Figure 11: breakdown of the slowest task's execution time.

(a) LR-40G — minimal GC everywhere; SparkSer's deserialization shows up
    as extra compute;
(b) LR-100G — Spark dominated by GC, SparkSer keeps it low, Deca lowest;
(c) PR-60G — shuffle read/write dominates Spark; Deca's smaller footprint
    shrinks both.
"""

from repro.config import ExecutionMode
from repro.bench.harness import run_graph_point, run_lr_point
from repro.bench.report import format_table, write_result

MODES = list(ExecutionMode)


def _slowest_task(point):
    run = point.extra.get("run")
    assert run is not None
    slowest = None
    for job in run.metrics.jobs:
        for stage in job.stages:
            task = stage.slowest_task
            if task is not None and (slowest is None
                                     or task.duration_ms
                                     > slowest.duration_ms):
                slowest = task
    return slowest


def test_fig11_breakdown(once):
    def scenario():
        out = {}
        for label in ("40GB", "100GB"):
            for mode in MODES:
                point = run_lr_point(label, mode, iterations=3)
                out[(f"LR-{label}", mode)] = (point,
                                              _slowest_task(point))
        for mode in MODES:
            point = run_graph_point("PR", "HB", mode, iterations=2)
            totals = point.extra.setdefault("totals", {})
            # Graph points don't carry the AppRun; aggregate from rows.
            out[("PR-60G", mode)] = (point, None)
        return out

    out = once(scenario)

    body = []
    for (label, mode), (point, task) in out.items():
        if task is not None:
            body.append([label, mode.value, f"{task.compute_ms:.1f}",
                         f"{task.gc_pause_ms:.1f}",
                         f"{task.shuffle_read_ms:.1f}",
                         f"{task.shuffle_write_ms:.1f}"])
        else:
            body.append([label, mode.value, f"{point.exec_s * 1000:.1f}",
                         f"{point.gc_s * 1000:.1f}", "-", "-"])
    table = format_table(
        "Figure 11: slowest-task breakdown (ms)",
        ["point", "mode", "compute", "gc", "shuffle-read",
         "shuffle-write"], body)
    print(table)
    write_result("fig11_breakdown", table)

    # (a) LR-40G: GC is small for every mode; SparkSer's task computes
    # longer than Spark's (deserialization).
    lr40 = {mode: task for (label, mode), (_, task) in out.items()
            if label == "LR-40GB"}
    spark_task = lr40[ExecutionMode.SPARK]
    ser_task = lr40[ExecutionMode.SPARK_SER]
    deca_task = lr40[ExecutionMode.DECA]
    assert ser_task.deser_ms > spark_task.deser_ms
    assert deca_task.duration_ms <= spark_task.duration_ms * 1.2

    # (b) LR-100G: Spark's slowest task is GC/IO-bound; Deca's is not.
    lr100 = {mode: task for (label, mode), (_, task) in out.items()
             if label == "LR-100GB"}
    assert lr100[ExecutionMode.SPARK].duration_ms > \
        2 * lr100[ExecutionMode.DECA].duration_ms

    # (c) PR-60G: Deca's run beats Spark's.
    pr = {mode: point for (label, mode), (point, _) in out.items()
          if label == "PR-60G"}
    assert pr[ExecutionMode.DECA].exec_s < pr[ExecutionMode.SPARK].exec_s
