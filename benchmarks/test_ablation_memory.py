"""Ablation: static memory split vs the unified executor arena.

The seed engine partitions executor memory statically (Spark 1.5's
``storage_fraction`` / ``shuffle_fraction`` walls).  The unified arena
(``memory_mode="unified"``, docs/memory_model.md) lets the execution
and storage pools borrow from each other the way Spark 1.6's
``UnifiedMemoryManager`` does.  This ablation runs the same two
workloads under both accounting planes at an equal heap and reports
the difference the borrowing makes:

* shuffle-heavy — WordCount 100GB/100M with deliberately tight static
  fractions: the unified pool must spill strictly less than the static
  wall does (the acceptance criterion for the arena);
* cache-heavy — the instrumented WordCount trace point: the unified
  run must show nonzero ``memory:borrow``/``memory:evict`` traffic
  (storage borrowing free execution memory and being evicted back).

Rows land in ``benchmarks/results/ablation_memory.txt`` and the
machine-readable summary in
``benchmarks/results/BENCH_ablation_memory.json``.
"""

from repro.bench.harness import run_memory_point
from repro.bench.report import format_table, write_json_result, \
    write_result
from repro.config import ExecutionMode


def _summary(row):
    return row.extra["memory"]


def test_ablation_memory(once):
    """Unified arena spills less shuffle data and borrows for cache."""

    def scenario():
        grid = {}
        for workload in ("shuffle-heavy", "cache-heavy"):
            for memory_mode in ("static", "unified"):
                grid[(workload, memory_mode)] = run_memory_point(
                    workload, memory_mode, ExecutionMode.SPARK)
        return grid

    grid = once(scenario)

    sh_static = _summary(grid[("shuffle-heavy", "static")])
    sh_unified = _summary(grid[("shuffle-heavy", "unified")])
    ch_static = _summary(grid[("cache-heavy", "static")])
    ch_unified = _summary(grid[("cache-heavy", "unified")])

    # Same answers either way: the arena changes accounting, not
    # results.
    for workload in ("shuffle-heavy", "cache-heavy"):
        assert (grid[(workload, "static")].extra["run"].result
                == grid[(workload, "unified")].extra["run"].result)

    # Shuffle-heavy: at an equal heap the unified pool spills strictly
    # less than the static wall.
    assert sh_static["spilled_bytes"] > 0
    assert sh_unified["spilled_bytes"] < sh_static["spilled_bytes"]

    # Cache-heavy: the unified run exercises borrowing and eviction.
    assert ch_unified["arena"]["borrow_events"] > 0
    assert ch_unified["arena"]["evict_events"] > 0
    # The static run rejects oversized blocks instead of thrashing.
    assert ch_static["events"].get("memory:reject", 0) > 0

    def spills(summary):
        return (summary["events"].get("shuffle:spill", 0)
                + summary["events"].get("shuffle:merge-spill", 0))

    rows = []
    for (workload, memory_mode), row in sorted(grid.items()):
        summary = _summary(row)
        rows.append([
            workload, memory_mode, row.mode,
            spills(summary), summary["spilled_bytes"],
            summary["events"].get("cache:swap-out", 0),
            summary["arena"].get("borrow_events", 0),
            summary["arena"].get("evict_events", 0),
            summary["events"].get("memory:reject", 0),
            round(row.exec_s, 3),
        ])
    table = format_table(
        "Ablation: static split vs unified memory arena (equal heap)",
        ["workload", "memory_mode", "mode", "spills", "spilled_B",
         "swapouts", "borrows", "evicts", "rejects", "exec(s)"],
        rows)
    print(table)
    write_result("ablation_memory", table)
    write_json_result("BENCH_ablation_memory", {
        "benchmark": "ablation_memory",
        "modes": ["static", "unified"],
        "points": {
            f"{workload}/{memory_mode}": {
                "spills": spills(_summary(row)),
                "spilled_bytes": _summary(row)["spilled_bytes"],
                "swapped_cache_bytes":
                    _summary(row)["swapped_cache_bytes"],
                "arena": _summary(row)["arena"],
                "exec_s": round(row.exec_s, 6),
            }
            for (workload, memory_mode), row in sorted(grid.items())
        },
    })
