"""Table 4: GC tuning — memory fractions and collector choice vs Deca.

The paper's finding: tuning can rescue the GC-bound LR job (CMS/G1 cut its
execution time severalfold; fraction changes help too), but it is far less
effective for the shuffle-heavy PR job (concurrent collectors lower the
reported GC time while *increasing* execution time) — and no tuning
approaches Deca.
"""

from repro.config import ExecutionMode, GcAlgorithm
from repro.bench.harness import (
    run_graph_point,
    run_lr_point,
    run_lr_tuning_point,
    run_pr_tuning_point,
)
from repro.bench.report import format_table, write_result


def test_table4_gc_tuning(once):
    def scenario():
        lr_fracs = [(f, run_lr_tuning_point(f,
                                            GcAlgorithm.PARALLEL_SCAVENGE))
                    for f in (0.8, 0.6, 0.4)]
        lr_algos = [(a, run_lr_tuning_point(0.9, a)) for a in GcAlgorithm]
        lr_deca = run_lr_point("80GB", ExecutionMode.DECA, iterations=3)
        pr_fracs = [(f, run_pr_tuning_point(f,
                                            GcAlgorithm.PARALLEL_SCAVENGE))
                    for f in (0.4, 0.1, 0.0)]
        pr_algos = [(a, run_pr_tuning_point(0.4, a)) for a in GcAlgorithm]
        pr_deca = run_graph_point("PR", "WB", ExecutionMode.DECA,
                                  iterations=2)
        return lr_fracs, lr_algos, lr_deca, pr_fracs, pr_algos, pr_deca

    lr_fracs, lr_algos, lr_deca, pr_fracs, pr_algos, pr_deca = \
        once(scenario)

    body = []
    for frac, row in lr_fracs:
        body.append(["LR:80GB", f"frac={frac:.1f}", "ps", row.exec_s,
                     row.gc_s])
    for algo, row in lr_algos:
        body.append(["LR:80GB", "frac=0.9", algo.value, row.exec_s,
                     row.gc_s])
    body.append(["LR:80GB", "Deca", "-", lr_deca.exec_s, lr_deca.gc_s])
    for frac, row in pr_fracs:
        body.append(["PR:30GB", f"frac={frac:.1f}", "ps", row.exec_s,
                     row.gc_s])
    for algo, row in pr_algos:
        body.append(["PR:30GB", "frac=0.4", algo.value, row.exec_s,
                     row.gc_s])
    body.append(["PR:30GB", "Deca", "-", pr_deca.exec_s, pr_deca.gc_s])
    table = format_table("Table 4: GC tuning vs Deca",
                         ["app", "tuning", "algo", "exec(s)", "gc(s)"],
                         body)
    print(table)
    write_result("table4_gc_tuning", table)

    lr_by_algo = {a: r for a, r in lr_algos}
    ps = lr_by_algo[GcAlgorithm.PARALLEL_SCAVENGE]
    cms = lr_by_algo[GcAlgorithm.CMS]
    g1 = lr_by_algo[GcAlgorithm.G1]
    # LR is GC-bound: concurrent collectors rescue it (paper: 3102 ->
    # 423/332 s), with G1 ahead of CMS.
    assert cms.exec_s < 0.8 * ps.exec_s
    assert g1.exec_s <= cms.exec_s
    # But even the best tuning stays well above Deca (paper: 152 s).
    assert lr_deca.exec_s < 0.5 * g1.exec_s

    # Lower storage fractions reduce LR's GC time (live set shrinks).
    lr_frac_rows = [r for _, r in lr_fracs]
    assert lr_frac_rows[-1].gc_s < lr_frac_rows[0].gc_s

    pr_by_algo = {a: r for a, r in pr_algos}
    pr_ps = pr_by_algo[GcAlgorithm.PARALLEL_SCAVENGE]
    pr_g1 = pr_by_algo[GcAlgorithm.G1]
    # PR is much less sensitive: G1's reported GC time drops, but its
    # execution time does not improve the way LR's does (paper: G1 makes
    # PR slower; we only require the LR-style rescue to be absent).
    assert pr_g1.gc_s < pr_ps.gc_s
    lr_rescue = ps.exec_s / g1.exec_s
    pr_rescue = pr_ps.exec_s / pr_g1.exec_s
    assert pr_rescue < 0.6 * lr_rescue
    # And Deca beats every PR tuning.
    for _, row in pr_fracs + pr_algos:
        assert pr_deca.exec_s < row.exec_s
