"""Ablation: row-major vs column-major SQL cache layout.

The SQL engine caches relations as Deca page groups either row-major
(each record packed contiguously) or column-major (one page run per
field, docs/sql_engine.md).  This ablation runs the TPC-H-flavoured
suite under both layouts on identical inputs and checks the layout
contract:

* equivalence — every query produces a byte-identical result digest
  under both layouts (the layout changes byte arrangement, not
  answers);
* kernels — the columnar scan/filter/aggregate kernels are faster in
  simulated time, because they touch one column run per value where
  the row kernels reconstruct whole records;
* footprint — the columnar cache is no larger than the row cache;
* zero-copy swaps — demoting the columnar cache to the mmap tier and
  re-running every query reproduces the resident digests with zero
  serializer bytes and a clean provenance ledger.

Rows land in ``benchmarks/results/ablation_sql.txt`` and the
machine-readable summary in
``benchmarks/results/BENCH_ablation_sql.json``.
"""

from repro.bench.harness import run_sql_point, run_sql_swap_roundtrip
from repro.bench.report import format_table, write_json_result, \
    write_result

RANKINGS_ROWS = 4_000
USERVISITS_ROWS = 8_000


def test_ablation_sql(once):
    """Columnar layout: same digests, faster kernels, zero-copy swaps."""

    def scenario():
        cells = {layout: run_sql_point(layout, RANKINGS_ROWS,
                                       USERVISITS_ROWS)
                 for layout in ("row", "columnar")}
        swap = run_sql_swap_roundtrip(RANKINGS_ROWS, USERVISITS_ROWS)
        return cells, swap

    cells, swap = once(scenario)
    row, col = cells["row"], cells["columnar"]

    # Equivalence: both layouts agree on every query's digest.
    assert row["digests"] == col["digests"]

    # Kernels: columnar wins every batch-kernel query.
    for name in ("scan", "filter", "groupby"):
        assert col["wall_ms"][name] < row["wall_ms"][name]

    # Footprint: no per-record padding in the columnar cache.
    assert col["cached_bytes"] <= row["cached_bytes"]

    # Zero-copy swaps: the mmap roundtrip moves raw page bytes only.
    assert swap["digests_match"]
    assert swap["bytes_moved_out"] > 0
    assert swap["bytes_moved_in"] > 0
    assert swap["swap_copy_bytes"] == 0
    assert swap["ledger_violations"] == 0

    names = sorted(row["digests"])
    body = []
    for layout, cell in sorted(cells.items()):
        body.append([layout]
                    + [round(cell["wall_ms"][name], 4) for name in names]
                    + [cell["cached_bytes"],
                       ",".join(cell["digests"][name][:8]
                                for name in names)])
    table = format_table(
        "Ablation: row vs columnar SQL cache layout",
        ["layout"] + [f"{name}(ms)" for name in names]
        + ["cached(B)", "digests"], body)
    print(table)
    print(f"swap roundtrip: moved_out={swap['bytes_moved_out']} "
          f"moved_in={swap['bytes_moved_in']} "
          f"serializer_copies={swap['swap_copy_bytes']} "
          f"ledger_violations={swap['ledger_violations']}")
    write_result("ablation_sql", table)
    write_json_result("BENCH_ablation_sql", {
        "benchmark": "ablation_sql",
        "layouts": ["row", "columnar"],
        "cells": cells,
        "swap_roundtrip": swap,
    })
