"""Table 3: GC-time reduction across the five applications.

For each application, the largest dataset that does not spill: Spark's
execution time, GC time and GC ratio, against Deca's GC time and the
resulting reduction.  The paper reports ratios of 40–79 % for Spark and
reductions of 97.5–99.9 %.
"""

from repro.config import ExecutionMode
from repro.bench.harness import (
    run_graph_point,
    run_kmeans_point,
    run_lr_point,
    run_wc_point,
)
from repro.bench.report import format_table, write_result


def _pairs():
    """(app label, spark row, deca row) for Table 3's five rows."""
    out = []
    out.append(("WC: 150GB",
                run_wc_point("150GB", "100M", ExecutionMode.SPARK),
                run_wc_point("150GB", "100M", ExecutionMode.DECA)))
    out.append(("LR: 80GB",
                run_lr_point("80GB", ExecutionMode.SPARK, iterations=3),
                run_lr_point("80GB", ExecutionMode.DECA, iterations=3)))
    out.append(("KMeans: 80GB",
                run_kmeans_point("80GB", ExecutionMode.SPARK,
                                 iterations=3),
                run_kmeans_point("80GB", ExecutionMode.DECA,
                                 iterations=3)))
    out.append(("PR: 30GB",
                run_graph_point("PR", "WB", ExecutionMode.SPARK,
                                iterations=2),
                run_graph_point("PR", "WB", ExecutionMode.DECA,
                                iterations=2)))
    out.append(("CC: 30GB",
                run_graph_point("CC", "WB", ExecutionMode.SPARK,
                                iterations=2),
                run_graph_point("CC", "WB", ExecutionMode.DECA,
                                iterations=2)))
    return out


def test_table3_gc_reduction(once):
    pairs = once(_pairs)

    body = []
    for label, spark, deca in pairs:
        reduction = (1.0 - deca.gc_s / spark.gc_s) if spark.gc_s else 0.0
        body.append([label, spark.exec_s, spark.gc_s,
                     f"{100 * spark.gc_fraction:.1f}%", deca.gc_s,
                     f"{100 * reduction:.1f}%"])
    table = format_table(
        "Table 3: GC time reduction (Spark exec/gc/ratio vs Deca gc)",
        ["app", "spark exec(s)", "spark gc(s)", "ratio", "deca gc(s)",
         "reduction"],
        body)
    print(table)
    write_result("table3_gc_reduction", table)

    for label, spark, deca in pairs:
        # Spark spends a substantial share of each run collecting garbage.
        assert spark.gc_fraction > 0.10, label
        # Deca eliminates most of it.
        reduction = 1.0 - deca.gc_s / spark.gc_s
        assert reduction > 0.50, (label, reduction)
    # The caching-heavy rows reproduce the paper's >97 % reductions.
    for label, spark, deca in pairs:
        if label.startswith(("LR", "KMeans")):
            assert 1.0 - deca.gc_s / spark.gc_s > 0.97, label
