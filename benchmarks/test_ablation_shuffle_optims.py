"""Ablation: the shuffle-buffer optimizations of §4.3.2.

Two Deca design choices for hash-based aggregation buffers:

* **value segment reuse** — an SFST combined Value is overwritten in place
  instead of re-allocated per merge;
* **pointer-array elision** — when Key and Value are primitives/SFSTs,
  segment offsets are static and the pointer array disappears.

We disable segment reuse (forcing the allocate-per-merge behaviour) on the
WordCount point with the most keys and measure the difference.
"""

import dataclasses

from repro.config import ExecutionMode
from repro.core.optimizer import DecaOptimizer
from repro.bench.harness import run_wc_point
from repro.bench.report import format_table, write_result


def test_ablation_segment_reuse(once):
    def scenario():
        full = run_wc_point("150GB", "100M", ExecutionMode.DECA)
        spark = run_wc_point("150GB", "100M", ExecutionMode.SPARK)

        original = DecaOptimizer.plan_shuffle

        def no_reuse(self, dep):
            plan = original(self, dep)
            if plan.value_segment_reuse:
                plan = dataclasses.replace(plan,
                                           value_segment_reuse=False)
            return plan

        DecaOptimizer.plan_shuffle = no_reuse
        try:
            ablated = run_wc_point("150GB", "100M", ExecutionMode.DECA)
        finally:
            DecaOptimizer.plan_shuffle = original
        return spark, ablated, full

    spark, ablated, full = once(scenario)

    table = format_table(
        "Ablation: shuffle value segment reuse (WC 150GB/100M)",
        ["variant", "exec(s)", "gc(s)", "minor-gcs"],
        [["spark", spark.exec_s, spark.gc_s, spark.minor_gcs],
         ["deca (no segment reuse)", ablated.exec_s, ablated.gc_s,
          ablated.minor_gcs],
         ["deca (full)", full.exec_s, full.gc_s, full.minor_gcs]])
    print(table)
    write_result("ablation_segment_reuse", table)

    # Without segment reuse every eager combine re-allocates the Value:
    # the young generation churns again.
    assert ablated.minor_gcs > full.minor_gcs
    assert ablated.gc_s >= full.gc_s
    # Full Deca keeps its edge over the ablated variant.
    assert full.exec_s <= ablated.exec_s
    # Even ablated, decomposed buffers beat Spark (no serialization).
    assert ablated.exec_s < spark.exec_s
