"""Figure 10: mixed caching and shuffling — PageRank and
ConnectedComponent on the three scaled graphs.

The paper's speedups here (1.1–6.4x) are smaller than the caching-only
cases because every iteration's shuffle buffers die and relieve pressure;
we check that Deca wins on every graph and that its GC time is a fraction
of Spark's.
"""

from repro.config import ExecutionMode
from repro.bench.harness import run_graph_point
from repro.bench.report import rows_as_table, speedup, write_result

MODES = list(ExecutionMode)
GRAPHS = ("LJ", "WB", "HB")


def _sweep(app):
    rows = []
    # CC symmetrizes the edge list (doubling it), so it gets a
    # proportionally larger heap — same occupancy regime as PR.
    heap_mb = 2.5 if app == "PR" else 4.0
    for graph in GRAPHS:
        iterations = 3 if graph == "LJ" else 2
        for mode in MODES:
            rows.append(run_graph_point(app, graph, mode,
                                        iterations=iterations,
                                        heap_mb=heap_mb))
    return rows


def _check(rows):
    by_point = {}
    for row in rows:
        by_point.setdefault(row.label, {})[row.mode] = row
    for label, modes in by_point.items():
        spark, deca = modes["spark"], modes["deca"]
        # Deca wins on every graph (paper: 1.1–6.4x).
        assert deca.exec_s < spark.exec_s, label
        # ... and cuts GC time substantially on the larger graphs.
        if not label.startswith("LJ"):
            assert deca.gc_s < 0.6 * spark.gc_s, label
        # Wherever Spark holds its cache in memory, Deca's footprint is
        # smaller (once Spark spills, its on-disk bytes are serialized and
        # byte totals converge, so the comparison is memory-only).
        if spark.swapped_mb == 0:
            assert deca.cached_mb + deca.swapped_mb <= \
                spark.cached_mb * 1.01, label
    return by_point


def test_fig10a_pagerank(once):
    rows = once(_sweep, "PR")
    table = rows_as_table("Figure 10(a): PageRank", rows)
    print(table)
    write_result("fig10a_pagerank", rows and table)
    by_point = _check(rows)
    # The biggest graph shows a clear win.
    big = by_point["HB(60GB)"]
    assert speedup(big["spark"], big["deca"]) > 1.2


def test_fig10b_cc(once):
    rows = once(_sweep, "CC")
    table = rows_as_table("Figure 10(b): ConnectedComponent", rows)
    print(table)
    write_result("fig10b_cc", table)
    _check(rows)
