"""Figure 9: the caching-only LR / KMeans experiments.

(a) LR lifetime timeline — the cached LabeledPoint population is stable in
    Spark while full GCs fire in vain; Deca's tracked population is pages;
(b) LR execution time and cache size across dataset scales — moderate
    gains while the cache fits, an order of magnitude once the old
    generation fills, and swapping effects beyond;
(c) the same sweep for KMeans (caching + aggregated shuffling);
(d) the high-dimension (Amazon-like) datasets — cache sizes nearly equal,
    speedups shrink.
"""

from repro.config import ExecutionMode
from repro.bench.harness import (
    run_kmeans_point,
    run_lr_point,
)
from repro.bench.report import ascii_timeline, format_table, \
    rows_as_table, speedup, write_result

MODES = list(ExecutionMode)


def test_fig9a_lr_lifetime(once):
    """Fig. 9(a): cached-object population and GC-time timeline."""

    def scenario():
        out = {}
        for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
            point = run_lr_point("80GB", mode, iterations=3, profile=True)
            run = point.extra["run"]
            samples = []
            for executor in run.ctx.executors:
                assert executor.profiler is not None
                samples.extend(executor.profiler.samples)
            out[mode] = (point, sorted(samples, key=lambda s: s.time_ms))
        return out

    out = once(scenario)
    spark_point, spark_samples = out[ExecutionMode.SPARK]
    deca_point, deca_samples = out[ExecutionMode.DECA]

    # Spark: a large, stable cached-object population (the full GCs that
    # fire reclaim nothing).  Deca: a handful of pages.
    spark_peak = max(s.tracked_objects for s in spark_samples)
    deca_peak = max(s.tracked_objects for s in deca_samples)
    assert spark_peak > 10_000
    assert deca_peak < spark_peak / 100

    # Spark's cumulative GC time keeps climbing after the cache is built.
    mid = spark_samples[len(spark_samples) // 2]
    assert spark_samples[-1].gc_pause_ms > mid.gc_pause_ms

    table = format_table(
        "Figure 9(a): LR lifetime (tracked cached objects, cumulative GC)",
        ["mode", "t(ms)", "tracked-objects", "gc(ms)"],
        [(mode.value, f"{s.time_ms:.0f}", s.tracked_objects,
          f"{s.gc_pause_ms:.2f}")
         for mode, (_, samples) in out.items() for s in samples])
    chart = ascii_timeline(
        "live cached objects over time",
        {mode.value: [(s.time_ms, float(s.tracked_objects))
                      for s in samples]
         for mode, (_, samples) in out.items()})
    print(table)
    print(chart)
    write_result("fig9a_lr_lifetime", table + "\n\n" + chart)


def _sweep(run_point, labels, iterations):
    rows = []
    for label in labels:
        for mode in MODES:
            rows.append(run_point(label, mode, iterations=iterations))
    return rows


def _check_sweep(rows, *, big_speedup: float):
    by_point = {}
    for row in rows:
        by_point.setdefault(row.label, {})[row.mode] = row
    # Small dataset: everyone is close; Deca never loses.
    small = by_point["40GB"]
    assert small["deca"].exec_s <= small["spark"].exec_s * 1.1
    # Large no-spill dataset: Deca wins big (paper: 16–41x).
    large = by_point["80GB"]
    assert speedup(large["spark"], large["deca"]) > big_speedup
    # Spill regime: Spark swaps cached data, Deca swaps less (or none).
    spill = by_point["200GB"]
    assert spill["spark"].swapped_mb > 0
    assert spill["deca"].swapped_mb <= spill["spark"].swapped_mb
    assert speedup(spill["spark"], spill["deca"]) > 2.0
    # In-memory cache footprints: Spark's object form dwarfs Deca's pages
    # wherever Spark still holds blocks in memory (swapped bytes are raw
    # data in both systems, so totals converge once everything spills).
    for label, modes in by_point.items():
        if modes["spark"].cached_mb > 0 and modes["spark"].swapped_mb == 0:
            assert modes["spark"].cached_mb > modes["deca"].cached_mb \
                + modes["deca"].swapped_mb


def test_fig9b_lr(once):
    """Fig. 9(b): LR execution time + cache size sweep."""
    rows = once(_sweep, run_lr_point, ("40GB", "80GB", "100GB", "200GB"),
                3)
    table = rows_as_table("Figure 9(b): LR sweep", rows)
    print(table)
    write_result("fig9b_lr", table)
    _check_sweep(rows, big_speedup=3.0)


def test_fig9c_kmeans(once):
    """Fig. 9(c): KMeans execution time + cache size sweep."""
    rows = once(_sweep, run_kmeans_point,
                ("40GB", "80GB", "100GB", "200GB"), 3)
    table = rows_as_table("Figure 9(c): KMeans sweep", rows)
    print(table)
    write_result("fig9c_kmeans", table)
    # KMeans is more compute-bound at this scale than in the paper, so
    # the execution-time gap is smaller; the GC elimination (Table 3's
    # 99.8 %) is checked below.
    _check_sweep(rows, big_speedup=1.3)
    by_point = {}
    for row in rows:
        by_point.setdefault(row.label, {})[row.mode] = row
    large = by_point["80GB"]
    assert large["deca"].gc_s < 0.03 * large["spark"].gc_s


def test_fig9d_highdim(once):
    """Fig. 9(d): 4096-dimension vectors — the cache-size gap closes."""

    def scenario():
        rows = []
        for label in ("40GB", "80GB"):
            for mode in MODES:
                rows.append(run_lr_point(
                    label, mode, iterations=3, dimensions=4096,
                    heap_mb=32))
        return rows

    rows = once(scenario)
    table = rows_as_table("Figure 9(d): high-dimension LR", rows)
    print(table)
    write_result("fig9d_highdim", table)

    by_point = {}
    for row in rows:
        by_point.setdefault(row.label, {})[row.mode] = row
    for label, modes in by_point.items():
        spark_total = modes["spark"].cached_mb + modes["spark"].swapped_mb
        deca_total = modes["deca"].cached_mb + modes["deca"].swapped_mb
        # Object headers are negligible at 4096 dims: sizes within ~15 %.
        assert abs(spark_total - deca_total) < 0.15 * spark_total
        # Deca still does not lose.
        assert modes["deca"].exec_s <= modes["spark"].exec_s * 1.1
