"""Figure 8: the shuffling-only WordCount experiment.

(a) lifetime timeline — live ``Tuple2`` population and cumulative GC time
    sampled over the run, Spark vs Deca;
(b) execution time across dataset sizes and key cardinalities — Deca wins
    by 10–58 %, and the gap grows with the number of unique keys because
    the eager-aggregation buffer (where Deca reuses value segments and
    skips serialization) scales with key count.
"""

from repro.config import ExecutionMode
from repro.bench.harness import WC_SIZES, run_wc_point
from repro.bench.report import ascii_timeline, format_table, \
    rows_as_json, rows_as_table, write_json_result, write_result


def test_fig8a_wc_lifetime(once):
    """Fig. 8(a): shuffle-buffer object population timeline."""

    def scenario():
        rows = {}
        for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
            point = run_wc_point("50GB", "100M", mode, profile=True)
            run = point.extra["run"]
            samples = []
            for executor in run.ctx.executors:
                assert executor.profiler is not None
                samples.extend(executor.profiler.samples)
            rows[mode] = (point, sorted(samples, key=lambda s: s.time_ms))
        return rows

    rows = once(scenario)
    spark_point, spark_samples = rows[ExecutionMode.SPARK]
    deca_point, deca_samples = rows[ExecutionMode.DECA]

    # Deca's buffers are pages: its peak tracked population must sit far
    # below Spark's per-pair Tuple2 population.
    spark_peak = max(s.tracked_objects for s in spark_samples)
    deca_peak = max(s.tracked_objects for s in deca_samples)
    assert deca_peak < spark_peak / 10

    # Cumulative GC time is monotone and lower for Deca at the end.
    assert spark_samples[-1].gc_pause_ms >= deca_samples[-1].gc_pause_ms

    table = format_table(
        "Figure 8(a): WC lifetime (live shuffle objects, cumulative GC)",
        ["mode", "t(ms)", "tracked-objects", "gc(ms)"],
        [(mode.value, f"{s.time_ms:.0f}", s.tracked_objects,
          f"{s.gc_pause_ms:.2f}")
         for mode, (_, samples) in rows.items() for s in samples])
    chart = ascii_timeline(
        "live shuffle-buffer objects over time",
        {mode.value: [(s.time_ms, float(s.tracked_objects))
                      for s in samples]
         for mode, (_, samples) in rows.items()})
    print(table)
    print(chart)
    write_result("fig8a_wc_lifetime", table + "\n\n" + chart)


def test_fig8b_wc_exec(once):
    """Fig. 8(b): WC execution time by size and key count."""

    def scenario():
        rows = []
        for size, keys in WC_SIZES:
            for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
                rows.append(run_wc_point(size, keys, mode))
        return rows

    rows = once(scenario)
    table = rows_as_table("Figure 8(b): WC execution time", rows,
                          include_cache=False)
    print(table)
    write_result("fig8b_wc_exec", table)
    write_json_result("BENCH_fig8b_wc_exec", rows_as_json(rows))

    by_point = {}
    for row in rows:
        by_point.setdefault(row.label, {})[row.mode] = row
    improvements = {}
    for label, pair in by_point.items():
        spark, deca = pair["spark"], pair["deca"]
        # Deca reduces execution time at every point (paper: 10–58 %).
        assert deca.exec_s < spark.exec_s, label
        improvements[label] = 1.0 - deca.exec_s / spark.exec_s

    # The improvement grows with the key cardinality at fixed size.
    for size in ("50GB", "100GB", "150GB"):
        assert improvements[f"{size}/100M"] > improvements[f"{size}/10M"]
