"""Ablation: simulated vs real multiprocess execution backend.

The sim backend models costs on simulated clocks inside one process;
the mp backend (``execution_backend="mp"``, docs/execution_backends.md)
forks a real worker pool and moves decomposed shuffle/cache data across
process boundaries as shared-memory Deca page segments, read in place.

This ablation runs the same seeded WordCount and PageRank inputs under
both backends and checks the two claims the backend layer makes:

* **equivalence** — the mp backend produces bitwise-identical results
  (the workers run the same data-plane code in the same order);
* **zero-copy** — decomposed paths serialize ~nothing: WordCount under
  DECA pickles 0 record bytes, and both apps move their decomposed
  payloads through shared segments (``bytes_shared > 0``).

Unlike every other benchmark in this directory, the mp wall seconds are
*real* elapsed time — this file starts the repo's actually-parallel
perf trajectory (``BENCH_ablation_backend.json``).
"""

import random
import time

from repro.apps.pagerank import run_pagerank
from repro.apps.wordcount import run_wordcount
from repro.bench.report import format_table, write_json_result, \
    write_result
from repro.config import DecaConfig, ExecutionMode

WORDS = 30_000
KEYS = 1_500
NODES = 300
EDGES = 1_500
ITERATIONS = 3
PARTITIONS = 4
SEED = 17


def _inputs():
    rng = random.Random(SEED)
    words = [f"w{rng.randrange(KEYS)}" for _ in range(WORDS)]
    edges = sorted({(rng.randrange(NODES), rng.randrange(NODES))
                    for _ in range(EDGES)})
    return words, edges


def test_ablation_backend(once):
    """mp matches sim bit-for-bit while pickling ~0 record bytes."""

    def scenario():
        words, edges = _inputs()
        grid = {}
        for backend in ("sim", "mp"):
            cfg = DecaConfig(mode=ExecutionMode.DECA,
                             execution_backend=backend)
            start = time.perf_counter()
            run = run_wordcount(words, cfg, num_partitions=PARTITIONS)
            grid[("wc", backend)] = (
                run, time.perf_counter() - start)
            cfg = DecaConfig(mode=ExecutionMode.DECA,
                             execution_backend=backend)
            start = time.perf_counter()
            run = run_pagerank(edges, cfg, iterations=ITERATIONS,
                               num_partitions=PARTITIONS)
            grid[("pr", backend)] = (
                run, time.perf_counter() - start)
        return grid

    grid = once(scenario)

    # Equivalence: real processes, identical answers.
    assert grid[("wc", "sim")][0].result == grid[("wc", "mp")][0].result
    assert grid[("pr", "sim")][0].result == grid[("pr", "mp")][0].result

    # Zero-copy: WC's decomposed shuffle pickles no record payload; both
    # apps move decomposed bytes through shared segments.
    wc_stats = grid[("wc", "mp")][0].metrics.backend
    pr_stats = grid[("pr", "mp")][0].metrics.backend
    assert wc_stats["bytes_pickled_records"] == 0
    assert wc_stats["bytes_shared"] > 0
    assert pr_stats["bytes_shared"] > 0
    assert wc_stats["segments_created"] > 0

    rows = []
    for (app, backend), (run, wall_s) in sorted(grid.items()):
        stats = run.metrics.backend
        rows.append([
            app, backend, round(wall_s, 3),
            stats.get("bytes_pickled_records", 0),
            stats.get("bytes_pickled_results", 0),
            stats.get("bytes_shared", 0),
            stats.get("segments_created", 0),
            stats.get("mp_tasks", 0),
        ])
    table = format_table(
        "Ablation: sim vs mp execution backend (real wall seconds)",
        ["app", "backend", "wall(s)", "pickled_rec_B", "pickled_res_B",
         "shared_B", "segments", "mp_tasks"],
        rows)
    print(table)
    write_result("ablation_backend", table)
    write_json_result("BENCH_ablation_backend", {
        "benchmark": "ablation_backend",
        "backends": ["sim", "mp"],
        "points": {
            f"{app}/{backend}": {
                "wall_s": round(wall_s, 6),
                "bytes_pickled_records":
                    run.metrics.backend.get("bytes_pickled_records", 0),
                "bytes_pickled_results":
                    run.metrics.backend.get("bytes_pickled_results", 0),
                "bytes_shared":
                    run.metrics.backend.get("bytes_shared", 0),
                "segments_created":
                    run.metrics.backend.get("segments_created", 0),
                "equivalent": run.result
                    == grid[(app, "sim")][0].result,
            }
            for (app, backend), (run, wall_s) in sorted(grid.items())
        },
    })
