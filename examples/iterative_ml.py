#!/usr/bin/env python3
"""Iterative machine learning on a cached dataset — the paper's Fig. 1.

Trains logistic regression on a cached LabeledPoint dataset under all
three modes and prints the execution/GC/footprint comparison of Fig. 9,
including the Deca optimizer's own explanation of what it decomposed and
why (the size-type classification of Algorithms 1–4).

Run:  python examples/iterative_ml.py
"""

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import labeled_points
from repro.apps.logistic_regression import run_logistic_regression


def main() -> None:
    # ~90% old-generation occupancy for the object cache: the paper's
    # "80GB" regime where Spark's full collections fire in vain.
    points = labeled_points(37_000, dimensions=10)

    results = {}
    for mode in ExecutionMode:
        config = DecaConfig(mode=mode, heap_bytes=4 * MB,
                            num_executors=2, tasks_per_executor=2,
                            young_fraction=0.25, storage_fraction=0.9,
                            shuffle_fraction=0.1, page_bytes=256 * 1024)
        results[mode] = run_logistic_regression(
            points, config, iterations=5, num_partitions=8)

    print(f"{'mode':12s} {'exec(s)':>9s} {'gc(s)':>8s} {'cache(MB)':>10s}")
    for mode, run in results.items():
        print(f"{mode.value:12s} {run.wall_s:9.3f} {run.gc_s:8.3f} "
              f"{run.cached_bytes / MB:10.2f}")

    # The three modes train the same model.
    w_spark = results[ExecutionMode.SPARK].result
    w_deca = results[ExecutionMode.DECA].result
    drift = max(abs(a - b) for a, b in zip(w_spark, w_deca))
    print(f"\nmax weight drift between Spark and Deca: {drift:.2e}")

    # Ask the Deca optimizer why it decomposed the cache.
    optimizer = results[ExecutionMode.DECA].ctx._optimizer
    print("\nDeca optimizer decisions:")
    for report in optimizer.reports:
        local = report.local_size_type.value if report.local_size_type \
            else "-"
        refined = report.global_size_type.value \
            if report.global_size_type else "-"
        print(f"  {report.target}: {report.udt} local={local} "
              f"global={refined} -> "
              f"{'DECOMPOSED' if report.decomposed else 'object form'} "
              f"({report.reason})")


if __name__ == "__main__":
    main()
