#!/usr/bin/env python3
"""The §6.6 comparison: hand-written RDD queries vs the columnar engine.

Runs the Big Data Benchmark's GroupBy-SUM query three ways — row objects
(Spark), decomposed pages (Deca), and the columnar Spark SQL stand-in —
and prints execution time, GC time and cache footprint for each.

Run:  python examples/sql_comparison.py
"""

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import uservisits_table
from repro.apps.sql_queries import run_query2, run_query2_sparksql


def main() -> None:
    visits = uservisits_table(20_000)
    config = lambda mode: DecaConfig(
        mode=mode, heap_bytes=int(4.5 * MB), num_executors=2,
        tasks_per_executor=2, young_fraction=0.25,
        storage_fraction=0.9, shuffle_fraction=0.1,
        page_bytes=256 * 1024)

    print("SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue) "
          "FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5);\n")

    spark = run_query2(visits, config(ExecutionMode.SPARK))
    deca = run_query2(visits, config(ExecutionMode.DECA))
    sql = run_query2_sparksql(visits, config(ExecutionMode.SPARK))

    print(f"{'system':10s} {'exec(s)':>9s} {'gc(s)':>8s} {'cache(MB)':>10s}")
    print(f"{'spark':10s} {spark.wall_s:9.3f} {spark.gc_s:8.3f} "
          f"{(spark.cached_bytes + spark.swapped_cache_bytes) / MB:10.2f}")
    print(f"{'deca':10s} {deca.wall_s:9.3f} {deca.gc_s:8.3f} "
          f"{(deca.cached_bytes + deca.swapped_cache_bytes) / MB:10.2f}")
    print(f"{'spark-sql':10s} {sql.wall_ms / 1000:9.3f} "
          f"{sql.gc_pause_ms / 1000:8.3f} "
          f"{sql.cached_bytes / MB:10.2f}")

    # All three systems agree on the aggregates.
    rdd_rows = dict(deca.result)
    for key, total in sql.rows:
        assert abs(rdd_rows[key] - total) < 1e-6
    print(f"\n{len(sql.rows)} groups; all three systems agree.  "
          "Deca keeps Spark's programming model (arbitrary UDFs/UDTs) at "
          "Spark SQL's memory efficiency.")


if __name__ == "__main__":
    main()
