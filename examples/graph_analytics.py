#!/usr/bin/env python3
"""Graph analytics: PageRank with mixed caching and shuffling.

Demonstrates the partially-decomposable pattern of Fig. 7(b): adjacency
lists are variable-sized while ``groupByKey`` builds them (the shuffle
buffer keeps object form) but runtime-fixed once cached (the cache gets
decomposed pages) — and the per-iteration rank messages decompose in the
aggregation buffers with in-place segment reuse.

Run:  python examples/graph_analytics.py
"""

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import graph_preset
from repro.apps.pagerank import run_pagerank


def main() -> None:
    edges = graph_preset("Pokec")
    print(f"graph: {len(edges)} edges, "
          f"{len({v for e in edges for v in e})} vertices")

    results = {}
    for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
        config = DecaConfig(mode=mode, heap_bytes=int(2.5 * MB),
                            num_executors=2, tasks_per_executor=2,
                            storage_fraction=0.4, shuffle_fraction=0.6,
                            page_bytes=128 * 1024)
        results[mode] = run_pagerank(edges, config, iterations=5,
                                     num_partitions=8)

    spark, deca = (results[ExecutionMode.SPARK],
                   results[ExecutionMode.DECA])
    print(f"\n{'':12s} {'exec(s)':>9s} {'gc(s)':>8s} {'cache(MB)':>10s}")
    for mode, run in results.items():
        print(f"{mode.value:12s} {run.wall_s:9.3f} {run.gc_s:8.3f} "
              f"{run.cached_bytes / MB:10.2f}")
    print(f"\nspeedup: {spark.wall_s / deca.wall_s:.2f}x, "
          f"GC reduced {100 * (1 - deca.gc_s / spark.gc_s):.1f}%")

    ranks = deca.result
    top = sorted(ranks.items(), key=lambda kv: -kv[1])[:5]
    print("top-ranked vertices:",
          [(v, round(r, 2)) for v, r in top])

    # Both modes agree on the ranking.
    spark_top = max(spark.result, key=spark.result.get)
    deca_top = max(ranks, key=ranks.get)
    assert spark_top == deca_top


if __name__ == "__main__":
    main()
