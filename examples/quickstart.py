#!/usr/bin/env python3
"""Quickstart: WordCount under Spark and under Deca.

Runs the same two-stage MapReduce program twice — once with plain object
buffers (Spark 1.6 behaviour) and once with Deca's lifetime-based pages —
and prints the identical results next to the very different memory-system
behaviour.

Run:  python examples/quickstart.py
"""

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import random_words
from repro.spark import DecaContext
from repro.apps.wordcount import wordcount_udt_info


def count_words(mode: ExecutionMode) -> None:
    config = DecaConfig(mode=mode, heap_bytes=3 * MB, num_executors=2,
                        tasks_per_executor=2, page_bytes=256 * 1024)
    ctx = DecaContext(config)

    words = random_words(num_words=60_000, unique_keys=20_000)
    lines = ctx.text_file(words, num_partitions=4)

    # Declaring the UDT (Tuple2[String, Int]) is what lets the Deca
    # optimizer classify and decompose the shuffle buffers; without it the
    # engine falls back to object form, exactly like the real system.
    pairs = lines.map(lambda w: (w, 1)).with_udt(wordcount_udt_info())
    counts = pairs.reduce_by_key(lambda a, b: a + b, 4)

    top = sorted(counts.collect(), key=lambda kv: -kv[1])[:3]
    run = ctx.finish()

    print(f"--- {mode.value} ---")
    print(f"  top words        : {top}")
    print(f"  simulated wall   : {run.wall_ms / 1000:.3f} s")
    print(f"  GC pause time    : {run.gc_pause_ms / 1000:.3f} s "
          f"({100 * run.gc_fraction:.1f}% of the run)")
    print(f"  minor / full GCs : {run.minor_gc_count} / "
          f"{run.full_gc_count}")


if __name__ == "__main__":
    for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
        count_words(mode)
