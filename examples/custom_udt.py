#!/usr/bin/env python3
"""Bringing your own UDT through the whole Deca pipeline, by hand.

Walks a custom ``Measurement`` type through every stage a dataset goes
through inside the optimizer:

1. declare the type (fields, finality, type-sets) and its constructor IR;
2. run the local classification (Algorithm 1) — conservative verdict;
3. run the global refinement (Algorithms 2–4) over the stage call graph;
4. build the byte layout and the synthesized accessor class (SUDT);
5. store records into a reference-counted page group and read them back
   through the accessor — no per-record objects anywhere.

Run:  python examples/custom_udt.py
"""

from repro.analysis import (
    ArrayType,
    Assign,
    CallGraph,
    ClassType,
    DOUBLE,
    Field,
    GlobalClassifier,
    INT,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    StoreField,
    SymInput,
    classify_locally,
)
from repro.memory import PageGroup, build_schema, synthesize_sudt


def declare_measurement():
    """A sensor measurement: id, timestamp, and a channel array whose
    length is read once from the device header."""
    samples_array = ArrayType(DOUBLE)
    samples_field = Field("samples", samples_array, final=True)
    measurement = ClassType("Measurement", [
        Field("sensor_id", INT),
        Field("timestamp", INT),
        samples_field,
    ])
    ctor = Method(
        "<init>", params=("sensor_id", "timestamp", "samples"),
        body=(
            StoreField("this", measurement.field("sensor_id"),
                       Local("sensor_id")),
            StoreField("this", measurement.field("timestamp"),
                       Local("timestamp")),
            StoreField("this", samples_field, Local("samples")),
        ),
        owner=measurement, is_constructor=True)
    stage = Method(
        name="ingest",
        body=(
            # The channel count is read once and hoisted (Fig. 4).
            Assign("channels", SymInput("channels")),
            Loop((
                NewArray("buf", samples_array, Local("channels")),
                NewObject("m", measurement, ctor=ctor,
                          args=(SymInput("id"), SymInput("ts"),
                                Local("buf"))),
            )),
            Return(),
        ))
    return measurement, samples_array, stage


def main() -> None:
    measurement, samples_array, stage = declare_measurement()

    local = classify_locally(measurement)
    print(f"1. local classification : {local.value}")

    callgraph = CallGraph.build(stage, known_types=(measurement,))
    classifier = GlobalClassifier(callgraph)
    refined = classifier.classify(measurement)
    print(f"2. global refinement    : {refined.value} "
          f"(fixed-length samples: "
          f"{classifier.is_fixed_length(samples_array)})")

    # The runtime optimizer knows channels == 6 for this job.
    channels = 6
    schema = build_schema(measurement, refined,
                          fixed_lengths={id(samples_array): channels})
    print(f"3. byte layout          : {schema.fixed_size} bytes/record "
          f"(vs ~{16 + 8 + 16 + 8 * channels + 16} in object form)")

    Sudt = synthesize_sudt(schema)
    group = PageGroup("measurements", page_bytes=4096)
    for i in range(100):
        group.append_record(
            schema, (i, 1_700_000_000 + i,
                     tuple(float(i + c) for c in range(channels))))
    group.trim()
    print(f"4. page group           : {group.page_count} pages, "
          f"{group.used_bytes} bytes for 100 records")

    accessor = Sudt()
    total = 0.0
    for buf, offset in group.scan(schema):
        accessor.bind(buf, offset)
        total += accessor.samples[0]
    print(f"5. accessor scan        : sum(samples[0]) = {total}")

    accessor.bind(*group.read(group.append_record(
        schema, (999, 0, (0.0,) * channels))))
    accessor.timestamp = 42  # writes go straight to the page bytes
    assert accessor.timestamp == 42

    info = group.new_page_info()
    shared = info.share()      # a secondary container shares the group
    info.close()
    assert not group.reclaimed  # still referenced
    shared.close()
    assert group.reclaimed      # last reference gone: bulk reclamation
    print("6. reference counting   : group reclaimed after last close")


if __name__ == "__main__":
    main()
